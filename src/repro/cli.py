"""Command-line experiment runner.

Regenerate any paper artifact without writing code::

    python -m repro.cli table1
    python -m repro.cli fig2 --epoch-scale 0.5
    python -m repro.cli fig3 --hidden 512 --datasets ppi reddit
    python -m repro.cli fig4
    python -m repro.cli table2
    python -m repro.cli ablations
    python -m repro.cli serve-bench --queries 3000
    python -m repro.cli serve-bench --cluster --shards 4 --replicas 2
    python -m repro.cli all --out results/

Observability (see ``docs/observability.md``)::

    python -m repro.cli train-bench --out results/
    python -m repro.cli obs-report --trace results/OBS_train_bench.json
    python -m repro.cli obs-report --trace results/OBS_serve_cluster.json --exemplars
    python -m repro.cli obs-report --trace results/OBS_serve_cluster.json --request t1.req-000042
    python -m repro.cli flight-dump --out results/

``train-bench`` runs one instrumented training run and exports the trace
(``OBS_train_bench.json`` + a Chrome ``trace_event`` file next to it);
``obs-report`` renders the per-phase breakdown table of any exported
trace — or, with ``--exemplars``, the retained tail exemplars (the
concrete slow requests behind the percentiles), or, with ``--request
<id>``, that request's span tree with its critical path marked (works on
trace documents and flight dumps alike); ``flight-dump`` runs a small
hedged replay and writes the flight recorder's ring buffers as an
``OBS_flightdump_*.json`` diagnostic bundle on demand. Each subcommand
prints the paper-style table; ``--out DIR`` additionally writes it to
``DIR/<name>.txt``.

Continuous performance observability::

    python -m repro.cli bench-record --results benchmarks/results
    python -m repro.cli bench-diff   --results benchmarks/results
    python -m repro.cli bench-gate   --results benchmarks/results
    python -m repro.cli slo-report   --queries 1000

``bench-record`` appends every ``BENCH_*.json`` record (raw samples +
environment fingerprint) to the JSONL history store; ``bench-diff``
compares the current records against their history series
(Mann–Whitney U + bootstrap CI, see :mod:`repro.obs.regress`);
``bench-gate`` does the same and exits 1 on any ``regressed`` verdict;
``slo-report`` runs a small instrumented training + serving + hedged
cluster workload and evaluates the standing SLO rules
(:mod:`repro.obs.slo`) against it — any breach auto-produces a
debounced flight dump next to the report (``--force-breach``
demonstrates that path with impossible thresholds).

Kernel dispatch tooling (see ``docs/kernels.md``)::

    python -m repro.cli kernel-tune warm
    python -m repro.cli kernel-tune show
    python -m repro.cli kernel-tune clear
    python -m repro.cli kernel-bench --min-speedup 1.1 --out results/
    python -m repro.cli roofline-report --kernel-plan auto --out results/

``kernel-tune`` manages the persisted autotuned plan table (warm tunes
the standard shape classes, show prints the table, clear deletes it);
``kernel-bench`` times static ``fast`` dispatch against autotuned
``auto`` dispatch and emits ``BENCH_kernels.json``; ``roofline-report``
runs one small instrumented training run and places every accounted
kernel shape class on the measured machine roofline
(``OBS_roofline.json``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np

from .experiments import (
    ablations,
    extensions,
    fig2,
    fig3,
    fig4,
    serving,
    table1,
    table2,
)
from .experiments.common import format_table, write_bench_json

__all__ = ["main", "build_parser"]


def _emit(name: str, text: str, out: pathlib.Path | None) -> None:
    print(text)
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{name}.txt").write_text(text + "\n")
        print(f"[written to {out / (name + '.txt')}]")


def _run_table1(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    _emit("table1", table1.format_results(table1.run(seed=args.seed)), out)


def _run_fig2(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    results = fig2.run(
        datasets=args.datasets,
        epoch_scale=args.epoch_scale,
        hidden=args.hidden or 128,
        seed=args.seed,
    )
    _emit("fig2", fig2.format_results(results), out)


def _run_fig3(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    from .experiments.plotting import ascii_speedup_plot

    hidden = (args.hidden,) if args.hidden else (512, 1024)
    results = fig3.run(
        datasets=args.datasets, hidden_dims=hidden, seed=args.seed
    )
    curves: dict[str, dict[int, float]] = {}
    for row in results["rows"]:
        key = f"{row['dataset']}/h{row['hidden']}"
        curves.setdefault(key, {})[row["cores"]] = row["iteration_speedup"]
    text = fig3.format_results(results) + "\n\n" + ascii_speedup_plot(
        curves, title="Figure 3A: iteration speedup vs cores"
    )
    _emit("fig3", text, out)


def _run_fig4(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    from .experiments.plotting import ascii_speedup_plot

    results = fig4.run(datasets=args.datasets, seed=args.seed)
    curves: dict[str, dict[int, float]] = {}
    for row in results["panel_a"]:
        curves.setdefault(row["dataset"], {})[row["p_inter"]] = row[
            "sampling_speedup"
        ]
    text = fig4.format_results(results) + "\n\n" + ascii_speedup_plot(
        curves, title="Figure 4A: sampling speedup vs p_inter"
    )
    _emit("fig4", text, out)


def _run_table2(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    results = table2.run(hidden=args.hidden or 128, seed=args.seed)
    _emit("table2", table2.format_results(results), out)


def _run_ablations(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    pieces = [
        ("X1: feature-only partitioning", ablations.run_partitioning(seed=args.seed)),
        (
            "X1b: measured gamma_P of real partitioners",
            ablations.run_partitioner_gamma(seed=args.seed),
        ),
        ("X2: Dashboard eta sweep", ablations.run_dashboard_eta(seed=args.seed)),
        ("X8: alias table vs Dashboard", ablations.run_alias_contrast()),
        ("X3: degree cap (Amazon)", ablations.run_degree_cap(seed=args.seed)),
        (
            "X4: sampler comparison (PPI)",
            ablations.run_sampler_comparison(seed=args.seed),
        ),
    ]
    text = "\n\n".join(
        format_table(res["rows"], title=title) for title, res in pieces
    )
    _emit("ablations", text, out)


def _run_extensions(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    pieces = [
        ("X6: depth vs accuracy", extensions.run_depth_accuracy(seed=args.seed)),
        (
            "X7: fixed budget, growing graph",
            extensions.run_budget_scaling(seed=args.seed),
        ),
    ]
    text = "\n\n".join(
        format_table(res["rows"], title=title) for title, res in pieces
    )
    _emit("extensions", text, out)


def _run_serve_bench(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    """Replay the Zipf query trace through the serving configurations.

    With ``--cluster``, run the sharded/replicated cluster experiment
    instead (million-vertex Zipf throughput + recall, bursty hedging,
    streaming-upsert soak under the cluster SLOs) and emit
    ``BENCH_serve_cluster.json``.
    """
    if args.cluster:
        # The cluster experiment saturates at a lower offered multiple
        # than the single-server comparison; keep its own default when
        # the user left --load-factor untouched.
        load_factor = args.load_factor if args.load_factor != 20.0 else 8.0
        results = serving.run_cluster(
            num_queries=args.queries,
            num_vertices=args.cluster_vertices,
            num_shards=args.shards,
            replicas=args.replicas,
            fanout=args.fanout,
            load_factor=load_factor,
            soak_vertices=min(50_000, args.cluster_vertices),
            seed=args.seed,
        )
        _emit("serve_cluster", serving.format_cluster_results(results), out)
        if out is not None:
            import json

            samples = {
                f"latency_s.{config}": values
                for config, values in results.get("latency_samples", {}).items()
            }
            path = write_bench_json(
                out / "BENCH_serve_cluster.json",
                "serve_cluster",
                {
                    k: v
                    for k, v in results.items()
                    if k not in ("latency_samples", "trace_doc")
                },
                samples=samples,
                env=_fingerprint(args),
            )
            print(f"[written to {path}]")
            # The hedged replay's request span forest + tail exemplars:
            # obs-report --exemplars / --request read this document.
            obs_path = out / "OBS_serve_cluster.json"
            obs_path.write_text(
                json.dumps(results["trace_doc"], indent=2) + "\n"
            )
            print(f"[written to {obs_path}]")
        return
    results = serving.run(
        num_queries=args.queries,
        load_factor=args.load_factor,
        seed=args.seed,
    )
    _emit("serve_bench", serving.format_results(results), out)
    if out is not None:
        samples = {
            f"latency_s.{config}": values
            for config, values in results.get("latency_samples", {}).items()
        }
        path = write_bench_json(
            out / "BENCH_serve_bench.json",
            "serve_bench",
            results,
            samples=samples,
            env=_fingerprint(args),
        )
        print(f"[written to {path}]")


def _run_sampler_bench(args: argparse.Namespace, out: pathlib.Path | None) -> int:
    """Time fast vs reference Dashboard engines; optionally enforce a floor.

    Emits ``BENCH_sampler_throughput.json`` with per-repeat wall-time
    series for both engines (lower-is-better) and the fast engine's
    subgraphs/sec series (higher-is-better) so bench-record / bench-gate
    can track the sampler the same way they track serving latency.
    """
    from .experiments import samplerbench
    from .obs.record import BenchRecord

    if args.family is not None:
        return _run_sampler_zoo_bench(args, out)
    results = samplerbench.run(
        repeats=args.repeats,
        seed=args.seed,
        min_speedup=(
            args.min_speedup
            if args.min_speedup is not None
            else samplerbench.DEFAULT_MIN_SPEEDUP
        ),
    )
    _emit("sampler_bench", samplerbench.format_results(results), out)
    if out is not None:
        record = BenchRecord(bench="sampler_throughput", env=_fingerprint(args))
        samples = results["samples"]
        record.add_samples(
            "sample_wall_s.fast", samples["sample_wall_s.fast"],
            unit="s", direction="lower",
        )
        record.add_samples(
            "sample_wall_s.reference", samples["sample_wall_s.reference"],
            unit="s", direction="lower",
        )
        record.add_samples(
            "throughput.fast", samples["throughput.fast"],
            unit="subgraphs/s", direction="higher",
        )
        path = write_bench_json(
            out / "BENCH_sampler_throughput.json",
            "sampler_throughput",
            {k: v for k, v in results.items() if k != "samples"},
            record=record,
        )
        print(f"[written to {path}]")
    if args.min_speedup is not None and not results["meets_target"]:
        print(
            f"sampler-bench: speedup {results['speedup']:.2f}x below "
            f"--min-speedup {args.min_speedup:.2f}x"
        )
        return 1
    return 0


def _run_sampler_zoo_bench(
    args: argparse.Namespace, out: pathlib.Path | None
) -> int:
    """``sampler-bench --family ...``: the four-family zoo comparison.

    ``--family all`` times every family in
    :data:`repro.sampling.zoo.FAMILIES` (fast vs reference, interleaved)
    at a shared budget; a single family name restricts the comparison.
    Emits ``BENCH_sampler_zoo.json`` with per-(family, engine) wall-time
    series plus each family's fast-engine throughput series for the
    bench-record / bench-gate history tooling.
    """
    from .experiments import samplerbench
    from .obs.record import BenchRecord
    from .sampling.zoo import FAMILIES

    families = FAMILIES if args.family == "all" else (args.family,)
    results = samplerbench.run_zoo(
        families=families,
        repeats=args.repeats,
        seed=args.seed,
        min_speedup=(
            args.min_speedup
            if args.min_speedup is not None
            else samplerbench.DEFAULT_ZOO_MIN_SPEEDUP
        ),
    )
    _emit("sampler_zoo", samplerbench.format_zoo_results(results), out)
    if out is not None:
        record = BenchRecord(bench="sampler_zoo", env=_fingerprint(args))
        for name, values in results["samples"].items():
            if name.startswith("throughput."):
                record.add_samples(
                    name, values, unit="subgraphs/s", direction="higher"
                )
            else:
                record.add_samples(name, values, unit="s", direction="lower")
        path = write_bench_json(
            out / "BENCH_sampler_zoo.json",
            "sampler_zoo",
            {k: v for k, v in results.items() if k != "samples"},
            record=record,
        )
        print(f"[written to {path}]")
    if args.min_speedup is not None and not results["meets_target"]:
        worst = min(results["speedups"].values())
        print(
            f"sampler-bench: worst per-family speedup {worst:.2f}x below "
            f"--min-speedup {args.min_speedup:.2f}x"
        )
        return 1
    return 0


def _run_report(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    """Assemble all tables in benchmarks/results/ into one document."""
    results_dir = (
        pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    )
    if not results_dir.is_dir():
        print(
            f"no results found at {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
        return
    order = [
        "table1_datasets",
        "fig2_time_accuracy",
        "fig3_scaling_h512",
        "fig3_scaling_h1024",
        "fig4_sampler_scaling",
        "table2_deeper_gcn",
        "ablation_partitioning",
        "ablation_partitioner_gamma",
        "ablation_dashboard_eta",
        "ablation_alias_vs_dashboard",
        "ablation_degree_cap",
        "ablation_samplers",
        "extension_depth_accuracy",
        "extension_budget_scaling",
        "serving",
    ]
    files = {p.stem: p for p in sorted(results_dir.glob("*.txt"))}
    sections = [
        files.pop(name).read_text().rstrip() for name in order if name in files
    ]
    sections += [p.read_text().rstrip() for p in files.values()]
    _emit("report", "\n\n".join(sections), out)


def _run_train_bench(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    """One instrumented training run; exports the trace and its report.

    The run is small (one dataset profile, a few epochs) because the
    point is the *trace*, not the accuracy: the exported
    ``OBS_train_bench.json`` is the per-phase time breakdown the
    acceptance test checks (sample/forward/backward spans must cover
    >= 95% of iteration wall time).
    """
    from . import obs
    from .experiments.common import EXPERIMENT_SCALES
    from .graphs.datasets import make_dataset
    from .train.config import TrainConfig
    from .train.trainer import GraphSamplingTrainer

    name = (args.datasets or ["ppi"])[0]
    dataset = make_dataset(name, scale=EXPERIMENT_SCALES[name], seed=args.seed)
    hidden = args.hidden or 128
    config = TrainConfig(
        hidden_dims=(hidden, hidden),
        epochs=max(1, int(round(3 * args.epoch_scale))),
        seed=args.seed,
        sampler_engine=args.sampler_engine,
        sampler_family=args.sampler_family,
        loss_norm=args.loss_norm,
        prefetch_depth=args.prefetch_depth,
        prefetch_workers=args.prefetch_workers,
        kernel_plan=args.kernel_plan,
    )
    obs.reset()
    with obs.enabled(), GraphSamplingTrainer(dataset, config) as trainer:
        result = trainer.train()
    doc = obs.export.trace_document("train_bench")
    doc["meta"] = {
        "dataset": name,
        "hidden": hidden,
        "epochs": config.epochs,
        "iterations": result.iterations,
        "final_val_f1": result.final_val_f1,
    }
    _emit("train_bench", obs.export.render_report(doc), out)
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        path = out / "OBS_train_bench.json"
        import json

        path.write_text(json.dumps(doc, indent=2) + "\n")
        chrome = obs.export.write_chrome_trace(out / "train_bench.chrome.json")
        print(f"[written to {path}]\n[written to {chrome}]")


def _run_obs_report(args: argparse.Namespace, out: pathlib.Path | None) -> int:
    """Render an exported trace document (``OBS_*.json``).

    Default: the per-phase breakdown table. ``--exemplars`` renders the
    tail-exemplar table instead (the concrete slow requests retained by
    the latency histograms); ``--request <id>`` prints that request's
    span tree with its critical path marked. Both work on trace
    documents and on flight-recorder dumps (``OBS_flightdump_*.json``) —
    any file whose ``"spans"`` list holds exported span trees.
    """
    from .obs import context as obs_context
    from .obs import export as obs_export

    if args.trace is None:
        print("obs-report requires --trace PATH (an OBS_*.json export)")
        raise SystemExit(2)
    doc = obs_export.load_trace(args.trace)
    if args.request is not None:
        roots = doc.get("spans", [])
        node = obs_context.find_request(roots, args.request)
        if node is None:
            ids = obs_context.request_ids(roots)
            preview = ", ".join(ids[:10]) if ids else "(none)"
            more = f", … ({len(ids)} total)" if len(ids) > 10 else ""
            print(
                f"obs-report: request {args.request!r} not found in "
                f"{args.trace}; available ids: {preview}{more}"
            )
            return 1
        _emit("obs_request", obs_context.render_request_tree(node), out)
        return 0
    if args.exemplars:
        _emit("obs_exemplars", obs_export.render_exemplars(doc), out)
        return 0
    _emit("obs_report", obs_export.render_report(doc), out)
    return 0


def _fingerprint(args: argparse.Namespace) -> dict[str, str]:
    """Environment fingerprint for CLI-emitted bench records."""
    from .obs.record import environment_fingerprint

    return environment_fingerprint(seed=args.seed)


def _policy(args: argparse.Namespace):
    """Regression policy from the CLI's gate knobs."""
    from .obs.regress import RegressionPolicy

    return RegressionPolicy(
        min_samples=args.min_samples,
        alpha=args.alpha,
        noise_threshold=args.noise,
        baseline_window=args.window,
    )


def _run_bench_record(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    """Append every BENCH_*.json record in --results to the history."""
    from .obs.history import HistoryStore
    from .obs.record import load_bench_records

    store = HistoryStore(args.history)
    records = load_bench_records(args.results)
    if not records:
        print(f"no BENCH_*.json records under {args.results}")
        return
    rows = []
    for record in records:
        appended = store.append(record)
        rows.append(
            {
                "bench": record.bench,
                "key": record.key,
                "metrics": len(record.series),
                "lines_appended": appended,
            }
        )
    _emit(
        "bench_record",
        format_table(rows, title=f"bench-record -> {store.root}"),
        out,
    )


def _diff_current_vs_history(args: argparse.Namespace):
    from .obs.history import HistoryStore
    from .obs.record import load_bench_records
    from .obs.regress import diff_against_history

    store = HistoryStore(args.history)
    records = load_bench_records(args.results)
    return diff_against_history(records, store, policy=_policy(args))


def _run_bench_diff(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    """Statistical diff of the current results against their history."""
    from .obs.regress import render_diff

    comparisons = _diff_current_vs_history(args)
    _emit("bench_diff", render_diff(comparisons), out)


def _run_bench_gate(args: argparse.Namespace, out: pathlib.Path | None) -> int:
    """bench-diff that exits 1 when any series gates ``regressed``."""
    from .obs.regress import VERDICT_REGRESSED, render_diff, worst_verdict

    comparisons = _diff_current_vs_history(args)
    verdict = worst_verdict(comparisons)
    text = render_diff(comparisons, title="bench gate")
    text += f"\n\nbench-gate verdict: {verdict}"
    _emit("bench_gate", text, out)
    return 1 if verdict == VERDICT_REGRESSED else 0


def _hedged_cluster_replay(*, queries: int, seed: int):
    """Small hedged cluster replay over a straggler replica set.

    Run with :mod:`repro.obs` enabled: the bursty trace plus a slow last
    replica make hedges actually fire, so the flight recorder's ring and
    the request span forest end up holding hedged duplicates with the
    winner marked — the material ``flight-dump`` and ``slo-report``
    breach dumps are expected to contain.
    """
    from .serving.cluster import ClusterConfig, ClusterServer
    from .serving.workload import bursty_trace

    rng = np.random.default_rng(seed)
    emb = rng.standard_normal((1024, 16))
    replicas = 2

    def straggler(shard, replica, batch_size, rows):
        base = 8e-4 + 2e-8 * rows
        return base * (6.0 if replica == replicas - 1 else 1.0)

    server = ClusterServer(
        emb,
        config=ClusterConfig(
            num_shards=3,
            replicas=replicas,
            fanout=2,
            hedge=True,
            hedge_min_samples=32,
            hedge_fallback=0.005,
        ),
        service_model=straggler,
        rng=np.random.default_rng(seed + 1),
    )
    trace = bursty_trace(
        queries, 1024, skew=1.1, base_rate=800.0, burst_rate=6000.0,
        base_seconds=0.4, burst_seconds=0.1, k=10,
        rng=np.random.default_rng(seed + 2),
    )
    return server.serve_trace(trace)


def _run_flight_dump(args: argparse.Namespace, out: pathlib.Path | None) -> None:
    """Trigger an on-demand flight-recorder dump.

    Runs one small instrumented hedged-cluster replay so the recorder's
    rings hold fresh request trees and events, then writes the
    ``OBS_flightdump_manual_*.json`` bundle to ``--out`` (default: the
    current directory). Inspect it with ``obs-report --trace <dump>
    --exemplars`` or ``--request <id>``.
    """
    from . import obs
    from .obs.flight import get_flight_recorder

    obs.reset()
    with obs.enabled():
        replay = _hedged_cluster_replay(
            queries=min(args.queries, 600), seed=args.seed
        )
        path = get_flight_recorder().dump(
            "manual", out_dir=out, reason="cli flight-dump"
        )
    print(
        f"flight-dump: replayed {replay.metrics.served} requests "
        f"({int(replay.stats.get('hedges', 0))} hedges fired)"
    )
    print(f"[written to {path}]")


def _run_slo_report(args: argparse.Namespace, out: pathlib.Path | None) -> int:
    """Evaluate the standing SLO rules against a real train+serve run.

    One small instrumented training run (the span-coverage and
    flop-drift rules read its tracer/counters; the expected flop count
    comes from the always-on kernel accounting captured over the same
    window), one serving trace replay (the deadline rule reads its
    latency samples), and one hedged cluster replay (the per-shard p99
    and staleness rules read its registry histograms). The flight
    recorder is pointed at ``--out``, so any breach auto-produces an
    ``OBS_flightdump_slo_breach_*.json`` bundle next to the report;
    ``--force-breach`` sets impossible thresholds to demonstrate that
    path on demand. Exits 1 on any breach when ``--strict``.
    """
    from . import obs
    from .experiments.common import EXPERIMENT_SCALES
    from .graphs.datasets import make_dataset
    from .kernels import accounting
    from .obs.flight import get_flight_recorder
    from .obs.slo import (
        SLOContext,
        cluster_rules,
        default_rules,
        evaluate,
        render_slo_report,
    )
    from .serving.server import EmbeddingServer, ServerConfig
    from .serving.workload import zipf_trace
    from .train.config import TrainConfig
    from .train.trainer import GraphSamplingTrainer

    name = (args.datasets or ["ppi"])[0]
    dataset = make_dataset(name, scale=EXPERIMENT_SCALES[name], seed=args.seed)
    hidden = args.hidden or 64
    config = TrainConfig(
        hidden_dims=(hidden, hidden),
        epochs=max(1, int(round(2 * args.epoch_scale))),
        seed=args.seed,
    )
    obs.reset()
    recorder = get_flight_recorder()
    if out is not None:
        recorder.out_dir = out
    dumps_before = recorder.dump_count
    with obs.enabled(), accounting.capture() as kernel_costs:
        trainer = GraphSamplingTrainer(dataset, config)
        trainer.train()
        rng = np.random.default_rng(args.seed)
        embeddings = rng.standard_normal((2048, 32))
        deadline = 0.0 if args.force_breach else args.deadline_ms / 1e3
        server = EmbeddingServer(
            embeddings,
            config=ServerConfig(max_batch=32, queue_capacity=256),
            index="cluster",
            index_kwargs={"num_clusters": 32, "probes": 8, "rng": rng},
        )
        trace = zipf_trace(
            args.queries, 2048, skew=1.1, rate=2000.0, k=10,
            rng=np.random.default_rng(args.seed + 1),
        )
        replay = server.serve_trace(trace)
        cluster_replay = _hedged_cluster_replay(
            queries=min(args.queries, 600), seed=args.seed
        )
        ctx = SLOContext(
            serving=replay.metrics,
            expected_flops=kernel_costs.total_flops,
        )
        rules = default_rules(deadline=deadline) + cluster_rules(
            per_shard_p99=0.0 if args.force_breach else 0.5,
            staleness_bound=5.0,
        )
        results = evaluate(rules, ctx)
    text = render_slo_report(results)
    if recorder.dump_count > dumps_before:
        dumps = sorted(
            pathlib.Path(recorder.out_dir or ".").glob(
                "OBS_flightdump_slo_breach_*.json"
            )
        )
        if dumps:
            text += f"\n\nflight dump (breach): {dumps[-1]}"
    text += (
        f"\n(cluster replay: {cluster_replay.metrics.served} served, "
        f"{int(cluster_replay.stats.get('hedges', 0))} hedges fired)"
    )
    _emit("slo_report", text, out)
    breached = any(not r.ok for r in results)
    return 1 if (breached and args.strict) else 0


def _plan_cache(args: argparse.Namespace):
    """Plan cache at ``--plan-cache`` (default: the user cache dir)."""
    from .kernels import autotune

    return autotune.PlanCache(args.plan_cache)


def _run_kernel_tune(args: argparse.Namespace, out: pathlib.Path | None) -> int:
    """``kernel-tune show|clear|warm``: manage the persisted plan table.

    ``warm`` tunes the standard shape classes through the cache (a
    second run should find everything cached: ``--expect-cached`` exits
    1 if any microbenchmark ran); ``show`` prints the tuned table;
    ``clear`` deletes this environment's table and resets the
    unreadable-cache latch.
    """
    from .experiments import kernelbench

    action = args.action or "show"
    cache = _plan_cache(args)
    if action == "clear":
        removed = cache.clear()
        print(
            f"kernel-tune: cleared {removed} plan table(s) under "
            f"{cache.cache_dir}"
        )
        return 0
    if action == "warm":
        stats = kernelbench.warm(cache, seed=args.seed)
        print(
            f"kernel-tune: {stats['classes']} shape classes in table, "
            f"{stats['microbenchmarks']} microbenchmarks this run "
            f"[{stats['path']}]"
        )
        if stats["load_failed"]:
            print(
                "kernel-tune: plan table unreadable; dispatch is running "
                "on static plans (kernel-tune clear to reset)"
            )
            return 1
        if args.expect_cached and stats["microbenchmarks"] > 0:
            print(
                "kernel-tune: --expect-cached, but "
                f"{stats['microbenchmarks']} microbenchmarks ran"
            )
            return 1
        return 0
    # show
    entries = cache.tuned_entries()  # forces the table load
    rows = [
        {
            "class": key,
            "plan": plan.describe(),
            "tuned_gflops_s": (
                cache.entries.get(key, {}).get("tuned_flops_s") or 0.0
            )
            / 1e9,
            "best_ms": (cache.entries.get(key, {}).get("best_s") or 0.0) * 1e3,
        }
        for key, plan in sorted(cache.plans.items())
    ]
    title = f"kernel plan table [{cache.path}]"
    if rows:
        text = format_table(rows, title=title)
        text += f"\n{len(entries)} tuned entr{'y' if len(entries) == 1 else 'ies'}"
    else:
        text = f"{title}\n(empty -- `kernel-tune warm` populates it)"
    if cache.load_failed:
        text += (
            "\nWARNING: table unreadable; dispatch falls back to static "
            "plans until `kernel-tune clear`"
        )
    _emit("kernel_tune", text, out)
    return 1 if cache.load_failed else 0


def _run_kernel_bench(args: argparse.Namespace, out: pathlib.Path | None) -> int:
    """Time static ``fast`` vs autotuned ``auto`` dispatch.

    Emits ``BENCH_kernels.json`` with per-repeat wall series for both
    modes on every benched shape class so bench-record / bench-gate can
    track dispatch performance. With ``--min-speedup``, exits 1 when
    autotuning fails to beat static dispatch by that factor on at least
    one shape class.
    """
    from .experiments import kernelbench
    from .kernels import autotune
    from .obs.record import BenchRecord

    cache = (
        autotune.PlanCache(args.plan_cache)
        if args.plan_cache is not None
        else autotune.PlanCache(persist=False)
    )
    results = kernelbench.run(
        repeats=args.repeats,
        seed=args.seed,
        min_speedup=(
            args.min_speedup
            if args.min_speedup is not None
            else kernelbench.DEFAULT_MIN_SPEEDUP
        ),
        cache=cache,
    )
    _emit("kernel_bench", kernelbench.format_results(results), out)
    if out is not None:
        record = BenchRecord(bench="kernels", env=_fingerprint(args))
        for name, values in results["samples"].items():
            record.add_samples(name, values, unit="s", direction="lower")
        path = write_bench_json(
            out / "BENCH_kernels.json",
            "kernels",
            {k: v for k, v in results.items() if k != "samples"},
            record=record,
        )
        print(f"[written to {path}]")
    if args.min_speedup is not None and not results["meets_target"]:
        print(
            f"kernel-bench: max speedup {results['max_speedup']:.2f}x below "
            f"--min-speedup {args.min_speedup:.2f}x"
        )
        return 1
    return 0


def _run_roofline_report(
    args: argparse.Namespace, out: pathlib.Path | None
) -> None:
    """Place a real training run's kernel classes on the roofline.

    One small training run under ``--kernel-plan`` provides the
    per-class accounting; the machine's compute and bandwidth ceilings
    are calibrated in-process; and the plan cache's tuned table (if
    any) supplies the achieved-vs-tuned fractions the
    ``kernel-roofline-fraction`` SLO rule gates on. ``--out`` writes the
    ``OBS_roofline.json`` artifact next to the rendered table.
    """
    from .experiments.common import EXPERIMENT_SCALES
    from .graphs.datasets import make_dataset
    from .kernels import accounting, autotune, roofline
    from .train.config import TrainConfig
    from .train.trainer import GraphSamplingTrainer

    name = (args.datasets or ["ppi"])[0]
    dataset = make_dataset(name, scale=EXPERIMENT_SCALES[name], seed=args.seed)
    hidden = args.hidden or 64
    config = TrainConfig(
        hidden_dims=(hidden, hidden),
        epochs=max(1, int(round(2 * args.epoch_scale))),
        seed=args.seed,
        kernel_plan=args.kernel_plan,
    )
    cache = _plan_cache(args)
    previous = autotune.set_plan_cache(cache)
    accounting.reset_totals()
    try:
        with GraphSamplingTrainer(dataset, config) as trainer:
            trainer.train()
    finally:
        autotune.set_plan_cache(previous)
    peaks = roofline.calibrate_peaks(np.float32)
    report = roofline.roofline_report(
        accounting.per_class_snapshot(),
        peaks=peaks,
        plan_entries=cache.tuned_entries(),
    )
    _emit("roofline_report", roofline.render_roofline(report), out)
    if out is not None:
        path = roofline.write_roofline_json(out, report)
        print(f"[written to {path}]")


_COMMANDS = {
    "table1": _run_table1,
    "extensions": _run_extensions,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "table2": _run_table2,
    "ablations": _run_ablations,
    "serve-bench": _run_serve_bench,
    "sampler-bench": _run_sampler_bench,
    "train-bench": _run_train_bench,
    "obs-report": _run_obs_report,
    "flight-dump": _run_flight_dump,
    "bench-record": _run_bench_record,
    "bench-diff": _run_bench_diff,
    "bench-gate": _run_bench_gate,
    "slo-report": _run_slo_report,
    "kernel-tune": _run_kernel_tune,
    "kernel-bench": _run_kernel_bench,
    "roofline-report": _run_roofline_report,
    "report": _run_report,
}

#: Commands `all` skips: obs-report needs an explicit --trace, the
#: history/SLO tooling mutates the history store or re-runs workloads,
#: and the kernel tooling mutates the plan cache / re-tunes.
_EXCLUDED_FROM_ALL = frozenset(
    {
        "obs-report",
        "flight-dump",
        "bench-record",
        "bench-diff",
        "bench-gate",
        "slo-report",
        "kernel-tune",
        "kernel-bench",
        "roofline-report",
    }
)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the experiment runner."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "action",
        nargs="?",
        choices=["show", "clear", "warm"],
        default=None,
        help="kernel-tune: plan-table action (default: show)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=None,
        help="dataset profiles (default: all four)",
    )
    parser.add_argument(
        "--hidden", type=int, default=None, help="hidden dimension override"
    )
    parser.add_argument(
        "--epoch-scale",
        type=float,
        default=1.0,
        help="scale factor on fig2's per-dataset epoch recipes",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=3000,
        help="serve-bench: number of requests in the replayed trace",
    )
    parser.add_argument(
        "--load-factor",
        type=float,
        default=20.0,
        help="serve-bench: offered rate as a multiple of naive capacity "
        "(--cluster mode defaults to 8x the batched single server)",
    )
    parser.add_argument(
        "--cluster",
        action="store_true",
        help="serve-bench: run the sharded cluster experiment instead",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="serve-bench --cluster: number of index shards",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="serve-bench --cluster: replicas per shard",
    )
    parser.add_argument(
        "--fanout",
        type=int,
        default=2,
        help="serve-bench --cluster: shards probed per query",
    )
    parser.add_argument(
        "--cluster-vertices",
        type=int,
        default=1_000_000,
        help="serve-bench --cluster: embedding rows in the sharded index",
    )
    parser.add_argument(
        "--sampler-engine",
        choices=["fast", "reference"],
        default="fast",
        help="train-bench: sampler execution engine",
    )
    parser.add_argument(
        "--sampler-family",
        choices=["dashboard", "rw", "edge", "edge-indp"],
        default="dashboard",
        help="train-bench: subgraph sampler family",
    )
    parser.add_argument(
        "--loss-norm",
        choices=["none", "saint"],
        default="none",
        help="train-bench: GraphSAINT loss-normalization mode",
    )
    parser.add_argument(
        "--family",
        choices=["dashboard", "rw", "edge", "edge-indp", "all"],
        default=None,
        help="sampler-bench: run the sampler-zoo comparison for this "
        "family ('all' = every family) instead of the Dashboard-only "
        "throughput bench",
    )
    parser.add_argument(
        "--prefetch-depth",
        type=int,
        default=0,
        help="train-bench: subgraphs kept sampled ahead of the trainer "
        "(0 disables the pipeline)",
    )
    parser.add_argument(
        "--prefetch-workers",
        type=int,
        default=1,
        help="train-bench: prefetch producers (1 = background thread, "
        ">1 = process pool)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=12,
        help="sampler-bench: timed subgraphs per engine",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="sampler-bench: exit 1 when fast/reference speedup is below "
        "this factor",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to write result tables into",
    )
    parser.add_argument(
        "--trace",
        type=pathlib.Path,
        default=None,
        help="obs-report: path to an exported OBS_*.json / trace document",
    )
    parser.add_argument(
        "--exemplars",
        action="store_true",
        help="obs-report: render the tail-exemplar table instead of the "
        "per-phase breakdown",
    )
    parser.add_argument(
        "--request",
        default=None,
        help="obs-report: print this request id's span tree (with its "
        "critical path marked) instead of the per-phase breakdown",
    )
    parser.add_argument(
        "--results",
        type=pathlib.Path,
        default=pathlib.Path("benchmarks") / "results",
        help="bench-record/diff/gate: directory holding BENCH_*.json files",
    )
    parser.add_argument(
        "--history",
        type=pathlib.Path,
        default=pathlib.Path("benchmarks") / "history",
        help="bench-record/diff/gate: the append-only JSONL history store",
    )
    parser.add_argument(
        "--alpha",
        type=float,
        default=0.01,
        help="bench-gate: Mann-Whitney significance level",
    )
    parser.add_argument(
        "--noise",
        type=float,
        default=0.10,
        help="bench-gate: relative median shift treated as noise",
    )
    parser.add_argument(
        "--min-samples",
        type=int,
        default=4,
        help="bench-gate: samples required on each side to compare",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=3,
        help="bench-gate: history entries pooled into the baseline",
    )
    parser.add_argument(
        "--kernel-plan",
        choices=["auto", "fast", "reference"],
        default="fast",
        help="train-bench/roofline-report: kernel plan policy "
        "(auto = per-shape-class autotuned dispatch)",
    )
    parser.add_argument(
        "--plan-cache",
        type=pathlib.Path,
        default=None,
        help="kernel-tune/kernel-bench/roofline-report: plan table "
        "directory (default: $REPRO_KERNEL_PLAN_CACHE or "
        "~/.cache/repro/kernel-plans; kernel-bench defaults to an "
        "in-memory table)",
    )
    parser.add_argument(
        "--expect-cached",
        action="store_true",
        help="kernel-tune warm: exit 1 if any microbenchmark ran "
        "(i.e. the plan table was not already warm)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=50.0,
        help="slo-report: serving latency deadline in milliseconds",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="slo-report: exit 1 when any SLO rule is breached",
    )
    parser.add_argument(
        "--force-breach",
        action="store_true",
        help="slo-report: evaluate with impossible thresholds so a "
        "breach (and its automatic flight dump) is guaranteed",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point: run the selected experiment(s); returns exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "all":
        names = [n for n in sorted(_COMMANDS) if n not in _EXCLUDED_FROM_ALL]
    else:
        names = [args.experiment]
    code = 0
    for name in names:
        code = max(code, _COMMANDS[name](args, args.out) or 0)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
