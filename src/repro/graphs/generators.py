"""Synthetic graph generators.

The paper evaluates on four real graphs (PPI, Reddit, Yelp, Amazon) that are
not redistributable here. These generators produce graphs matching the
*statistical profile* each algorithm actually depends on:

* degree distribution shape (power-law exponent, average degree, max-degree
  skew — the Amazon profile needs heavy skew to exercise the sampler's
  degree cap),
* community structure (so that planted class labels are learnable by a GCN
  and the time-accuracy experiment of Figure 2 is meaningful),
* scale knobs (vertex/edge counts) so every profile from Table I can be
  reproduced at a configurable fraction of its original size.

The workhorse is a degree-corrected stochastic block model (DC-SBM) sampled
with the Chung–Lu expected-degree trick: the number of edges between each
block pair is Poisson, and endpoints inside a block are drawn proportionally
to per-vertex weights. Everything is vectorized; generation of a ~100k-edge
graph takes milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph, edges_to_csr

__all__ = [
    "power_law_weights",
    "chung_lu_graph",
    "dcsbm_graph",
    "ring_of_cliques",
    "grid_graph",
    "ensure_min_degree",
    "DCSBMParams",
]


def power_law_weights(
    n: int,
    exponent: float,
    *,
    w_min: float = 1.0,
    w_max: float | None = None,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``n`` weights from a bounded Pareto distribution.

    ``P(w) ∝ w^-exponent`` on ``[w_min, w_max]``. Used as expected degrees;
    the ratio ``w_max / w_min`` controls degree skew (Amazon-like profiles
    use a large ratio, PPI-like profiles a small one).
    """
    if exponent <= 1.0:
        raise ValueError("power-law exponent must exceed 1")
    if w_max is None:
        w_max = w_min * n ** 0.5
    if w_max < w_min:
        raise ValueError("w_max must be >= w_min")
    u = rng.random(n)
    a = 1.0 - exponent
    # Inverse-CDF sampling of the truncated Pareto.
    lo, hi = w_min**a, w_max**a
    return (lo + u * (hi - lo)) ** (1.0 / a)


@dataclass(frozen=True)
class DCSBMParams:
    """Parameters of the degree-corrected stochastic block model.

    Attributes
    ----------
    num_vertices:
        Total vertex count ``n``.
    num_blocks:
        Number of planted communities ``K``.
    avg_degree:
        Target average (undirected) degree.
    exponent:
        Power-law exponent of the degree weights (typ. 2.1–3.0).
    mixing:
        Fraction of edge endpoints that ignore community structure
        (0 = perfectly assortative, 1 = no community signal). Typical
        learnable profiles use 0.1–0.4.
    max_weight_ratio:
        ``w_max / w_min`` of the weight distribution; drives skew.
    block_sizes:
        Optional explicit block sizes (must sum to ``num_vertices``);
        defaults to near-equal blocks.
    """

    num_vertices: int
    num_blocks: int
    avg_degree: float
    exponent: float = 2.5
    mixing: float = 0.2
    max_weight_ratio: float = 100.0
    block_sizes: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.num_vertices <= 0 or self.num_blocks <= 0:
            raise ValueError("num_vertices and num_blocks must be positive")
        if self.num_blocks > self.num_vertices:
            raise ValueError("more blocks than vertices")
        if not (0.0 <= self.mixing <= 1.0):
            raise ValueError("mixing must lie in [0, 1]")
        if self.avg_degree <= 0:
            raise ValueError("avg_degree must be positive")
        if self.block_sizes is not None and sum(self.block_sizes) != self.num_vertices:
            raise ValueError("block_sizes must sum to num_vertices")


def _default_block_sizes(n: int, k: int) -> np.ndarray:
    sizes = np.full(k, n // k, dtype=np.int64)
    sizes[: n % k] += 1
    return sizes


def chung_lu_graph(
    n: int,
    avg_degree: float,
    *,
    exponent: float = 2.5,
    max_weight_ratio: float = 100.0,
    rng: np.random.Generator,
) -> CSRGraph:
    """Chung–Lu power-law graph without community structure."""
    params = DCSBMParams(
        num_vertices=n,
        num_blocks=1,
        avg_degree=avg_degree,
        exponent=exponent,
        mixing=1.0,
        max_weight_ratio=max_weight_ratio,
    )
    graph, _ = dcsbm_graph(params, rng=rng)
    return graph


def dcsbm_graph(
    params: DCSBMParams, *, rng: np.random.Generator
) -> tuple[CSRGraph, np.ndarray]:
    """Sample a degree-corrected SBM.

    Returns ``(graph, block_assignment)`` where ``block_assignment[v]`` is
    the planted community of vertex ``v``. The graph is undirected, simple
    (no self-loops, no parallel edges), and its average degree approximates
    ``params.avg_degree`` (sampling + dedup shave a few percent).
    """
    n, k = params.num_vertices, params.num_blocks
    sizes = (
        np.asarray(params.block_sizes, dtype=np.int64)
        if params.block_sizes is not None
        else _default_block_sizes(n, k)
    )
    blocks = np.repeat(np.arange(k, dtype=np.int32), sizes)
    # Shuffle so that vertex id carries no block information (several tests
    # and the feature generator rely on label order independence).
    perm = rng.permutation(n)
    blocks = blocks[perm]

    weights = power_law_weights(
        n,
        params.exponent,
        w_min=1.0,
        w_max=params.max_weight_ratio,
        rng=rng,
    )

    total_endpoints = params.avg_degree * n  # directed edge endpoints
    target_edges = int(round(total_endpoints / 2.0))
    # Split the edge budget: a `mixing` fraction is wired globally
    # (Chung–Lu over all vertices), the rest within blocks.
    m_between = int(round(target_edges * params.mixing))
    m_within = target_edges - m_between

    edge_chunks: list[np.ndarray] = []
    if m_between > 0:
        p_global = weights / weights.sum()
        src = rng.choice(n, size=m_between, p=p_global)
        dst = rng.choice(n, size=m_between, p=p_global)
        edge_chunks.append(np.column_stack((src, dst)))
    if m_within > 0:
        # Per-block budgets proportional to within-block weight mass.
        block_mass = np.bincount(blocks, weights=weights, minlength=k)
        frac = block_mass / block_mass.sum()
        budgets = rng.multinomial(m_within, frac)
        order = np.argsort(blocks, kind="stable")
        sorted_blocks = blocks[order]
        boundaries = np.searchsorted(sorted_blocks, np.arange(k + 1))
        for b in range(k):
            mb = int(budgets[b])
            members = order[boundaries[b] : boundaries[b + 1]]
            if mb == 0 or members.size < 2:
                continue
            w = weights[members]
            p = w / w.sum()
            src = members[rng.choice(members.size, size=mb, p=p)]
            dst = members[rng.choice(members.size, size=mb, p=p)]
            edge_chunks.append(np.column_stack((src, dst)))

    if edge_chunks:
        edges = np.concatenate(edge_chunks, axis=0)
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    graph = edges_to_csr(edges, n, symmetrize=True, dedup=True, drop_self_loops=True)
    graph = ensure_min_degree(graph, 1, rng=rng)
    return graph, blocks


def ensure_min_degree(
    graph: CSRGraph, min_degree: int, *, rng: np.random.Generator
) -> CSRGraph:
    """Attach random edges so every vertex has degree >= ``min_degree``.

    The frontier sampler requires every vertex to have at least one
    neighbor (Algorithm 2, line 5 draws a uniform neighbor of the popped
    vertex); real datasets satisfy this after preprocessing, and the
    generators enforce it here.
    """
    n = graph.num_vertices
    deficit = min_degree - graph.degrees
    needy = np.flatnonzero(deficit > 0)
    if needy.size == 0:
        return graph
    extra_src = np.repeat(needy, deficit[needy].astype(np.int64))
    extra_dst = rng.integers(0, n, size=extra_src.size)
    # Avoid accidental self-loops on the patch edges.
    clash = extra_dst == extra_src
    extra_dst[clash] = (extra_dst[clash] + 1) % n
    edges = np.concatenate(
        [graph.edge_list(), np.column_stack((extra_src, extra_dst))], axis=0
    )
    return edges_to_csr(edges, n, symmetrize=True, dedup=True, drop_self_loops=True)


def ring_of_cliques(num_cliques: int, clique_size: int) -> CSRGraph:
    """Deterministic ring-of-cliques graph (test fixture).

    ``num_cliques`` cliques of ``clique_size`` vertices each; clique ``i``
    is bridged to clique ``i+1 mod num_cliques`` by a single edge. Useful
    for connectivity-preservation tests: it has an obvious community
    structure and known clustering coefficients.
    """
    if num_cliques < 1 or clique_size < 2:
        raise ValueError("need >= 1 cliques of size >= 2")
    n = num_cliques * clique_size
    edges = []
    for c in range(num_cliques):
        base = c * clique_size
        members = np.arange(base, base + clique_size)
        iu, ju = np.triu_indices(clique_size, k=1)
        edges.append(np.column_stack((members[iu], members[ju])))
    if num_cliques > 1:
        bridges = np.array(
            [
                (c * clique_size, ((c + 1) % num_cliques) * clique_size + 1)
                for c in range(num_cliques)
            ]
        )
        if num_cliques == 2:
            bridges = bridges[:1]
        edges.append(bridges)
    return edges_to_csr(np.concatenate(edges, axis=0), n)


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """Deterministic 2-D grid graph (test fixture with known structure)."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    idx = np.arange(rows * cols).reshape(rows, cols)
    right = np.column_stack((idx[:, :-1].ravel(), idx[:, 1:].ravel()))
    down = np.column_stack((idx[:-1, :].ravel(), idx[1:, :].ravel()))
    return edges_to_csr(np.concatenate([right, down], axis=0), rows * cols)
