"""Structural validation for graphs and datasets.

Loading paths (:mod:`repro.graphs.io`) and user-constructed objects can
violate invariants the rest of the library assumes (sorted neighbor
lists, symmetry, min-degree for samplers, finite features, consistent
splits). These validators check everything at once and report *all*
violations rather than failing at first use deep inside a kernel.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph
from .datasets import Dataset

__all__ = ["validate_graph", "validate_dataset", "ValidationError"]


class ValidationError(ValueError):
    """Raised when validation finds problems; carries the full list."""

    def __init__(self, problems: list[str]) -> None:
        self.problems = problems
        super().__init__(
            "validation failed with "
            f"{len(problems)} problem(s):\n- " + "\n- ".join(problems)
        )


def validate_graph(
    graph: CSRGraph,
    *,
    require_symmetric: bool = True,
    require_min_degree: int | None = None,
    forbid_self_loops: bool = False,
    raise_on_error: bool = True,
) -> list[str]:
    """Check CSR invariants; returns the list of problems found.

    Constructor-level invariants (indptr monotone, indices in range) are
    enforced by :class:`CSRGraph` itself; this adds the semantic ones the
    samplers and propagators rely on.
    """
    problems: list[str] = []
    # Sorted, duplicate-free neighbor lists.
    for v in range(graph.num_vertices):
        nbrs = graph.neighbors(v)
        if nbrs.size > 1 and np.any(np.diff(nbrs) <= 0):
            problems.append(f"vertex {v}: neighbor list not sorted-unique")
            break  # one example suffices; lists share the construction path
    if require_symmetric and not graph.is_symmetric():
        problems.append("adjacency is not symmetric (undirected graphs required)")
    if require_min_degree is not None:
        bad = int(np.sum(graph.degrees < require_min_degree))
        if bad:
            problems.append(
                f"{bad} vertices below min degree {require_min_degree} "
                "(frontier sampling requires min degree >= 1)"
            )
    if forbid_self_loops:
        src = graph.edge_sources()
        loops = int(np.sum(src == graph.indices))
        if loops:
            problems.append(f"{loops} self-loop edge entries present")
    if problems and raise_on_error:
        raise ValidationError(problems)
    return problems


def validate_dataset(dataset: Dataset, *, raise_on_error: bool = True) -> list[str]:
    """Check a dataset's cross-field consistency beyond its constructor."""
    problems = validate_graph(
        dataset.graph, require_symmetric=True, raise_on_error=False
    )
    if not np.all(np.isfinite(dataset.features)):
        problems.append("features contain non-finite values")
    if dataset.task == "single":
        labels = dataset.labels
        if labels.size and (labels.min() < 0 or labels.max() >= dataset.num_classes):
            problems.append("single-label ids out of [0, num_classes) range")
    else:
        uniq = np.unique(dataset.labels)
        if not set(uniq.tolist()) <= {0.0, 1.0}:
            problems.append("multi-label matrix contains values other than 0/1")
    for name, idx in (
        ("train", dataset.train_idx),
        ("val", dataset.val_idx),
        ("test", dataset.test_idx),
    ):
        if idx.size == 0:
            problems.append(f"{name} split is empty")
        elif np.unique(idx).size != idx.size:
            problems.append(f"{name} split contains duplicate indices")
    if problems and raise_on_error:
        raise ValidationError(problems)
    return problems
