"""Dataset profiles mirroring Table I of the paper.

Each of the paper's four datasets (PPI, Reddit, Yelp, Amazon) is represented
by a :class:`DatasetProfile` capturing its published statistics — vertex and
edge counts, attribute dimensionality, class count, single- vs multi-label
task — plus generator knobs (degree skew, community count, feature synth
recipe) chosen so the synthetic stand-in stresses the same code paths:

* **PPI**: small, moderately dense, 121-way multi-label.
* **Reddit**: high average degree (~100), single-label. The paper calls it
  "the largest graph evaluated by state-of-the-art embedding methods".
* **Yelp**: large and sparse (avg degree ~19), Word2Vec-style features.
* **Amazon**: extreme degree skew (avg 165, max in the tens of thousands) —
  the profile that motivates the sampler's per-vertex degree cap.

``make_dataset(name, scale=...)`` generates a scaled instance: vertex count
is ``round(scale * full_num_vertices)`` and average degree is preserved
(optionally damped for tractability). All randomness flows through a
caller-supplied seed, so datasets are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from .csr import CSRGraph
from .features import (
    gaussian_class_features,
    multi_label_from_blocks,
    single_label_from_blocks,
    smooth_features,
    svd_compressed_features,
)
from .generators import DCSBMParams, dcsbm_graph

__all__ = ["DatasetProfile", "Dataset", "PROFILES", "make_dataset", "table1_rows"]

TaskType = Literal["single", "multi"]


@dataclass(frozen=True)
class DatasetProfile:
    """Published statistics + generation recipe for one paper dataset."""

    name: str
    full_num_vertices: int
    full_num_edges: int  # undirected, as reported in Table I
    attribute_dim: int
    num_classes: int
    task: TaskType
    # Generator knobs.
    degree_exponent: float = 2.5
    max_weight_ratio: float = 100.0
    mixing: float = 0.25
    blocks_per_class: int = 1
    feature_recipe: Literal["gaussian", "svd"] = "gaussian"
    feature_signal: float = 2.0
    feature_noise: float = 1.0
    feature_smooth_hops: int = 1
    label_flip_prob: float = 0.03
    labels_per_block: int = 3

    @property
    def full_avg_degree(self) -> float:
        """Average number of stored (directed) edges per vertex."""
        return 2.0 * self.full_num_edges / self.full_num_vertices


# Table I of the paper, verbatim; (M) = multi-label, (S) = single-label.
PROFILES: dict[str, DatasetProfile] = {
    "ppi": DatasetProfile(
        name="ppi",
        full_num_vertices=14_755,
        full_num_edges=225_270,
        attribute_dim=50,
        num_classes=121,
        task="multi",
        degree_exponent=2.6,
        max_weight_ratio=40.0,
        mixing=0.30,
        feature_recipe="gaussian",
        feature_signal=1.6,
        feature_noise=1.0,
        labels_per_block=36,  # real PPI averages ~37 of 121 labels per vertex
        label_flip_prob=0.01,
    ),
    "reddit": DatasetProfile(
        name="reddit",
        full_num_vertices=232_965,
        full_num_edges=11_606_919,
        attribute_dim=602,
        num_classes=41,
        task="single",
        degree_exponent=2.3,
        max_weight_ratio=200.0,
        mixing=0.20,
        feature_recipe="gaussian",
        feature_signal=2.2,
        feature_noise=1.0,
    ),
    "yelp": DatasetProfile(
        name="yelp",
        full_num_vertices=716_847,
        full_num_edges=6_977_410,
        attribute_dim=300,
        num_classes=100,
        task="multi",
        degree_exponent=2.7,
        max_weight_ratio=120.0,
        mixing=0.25,
        feature_recipe="gaussian",
        feature_signal=1.8,
        feature_noise=1.0,
        labels_per_block=12,
        label_flip_prob=0.01,
    ),
    "amazon": DatasetProfile(
        name="amazon",
        full_num_vertices=1_598_960,
        full_num_edges=132_169_734,
        attribute_dim=200,
        num_classes=107,
        task="multi",
        degree_exponent=2.05,  # heavy tail: exercises the degree cap
        max_weight_ratio=2000.0,
        mixing=0.25,
        feature_recipe="svd",
        labels_per_block=12,
        label_flip_prob=0.01,
    ),
}


@dataclass(frozen=True)
class Dataset:
    """A generated dataset instance: topology + attributes + labels + splits.

    ``labels`` is ``int64[n]`` for single-label tasks and ``float64[n, C]``
    (0/1 indicator matrix) for multi-label tasks.
    """

    name: str
    graph: CSRGraph
    features: np.ndarray
    labels: np.ndarray
    train_idx: np.ndarray
    val_idx: np.ndarray
    test_idx: np.ndarray
    task: TaskType
    num_classes: int
    profile: DatasetProfile | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        n = self.graph.num_vertices
        if self.features.shape[0] != n:
            raise ValueError("features row count must equal num_vertices")
        if self.labels.shape[0] != n:
            raise ValueError("labels row count must equal num_vertices")
        if self.task == "multi" and (
            self.labels.ndim != 2 or self.labels.shape[1] != self.num_classes
        ):
            raise ValueError("multi-label labels must be (n, num_classes)")
        if self.task == "single" and self.labels.ndim != 1:
            raise ValueError("single-label labels must be 1-D class ids")
        all_idx = np.concatenate([self.train_idx, self.val_idx, self.test_idx])
        if np.unique(all_idx).shape[0] != all_idx.shape[0]:
            raise ValueError("train/val/test splits overlap")
        if all_idx.size and (all_idx.min() < 0 or all_idx.max() >= n):
            raise ValueError("split indices out of range")

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def attribute_dim(self) -> int:
        return self.features.shape[1]

    def labels_of(self, vertices: np.ndarray) -> np.ndarray:
        """Labels restricted to the given vertices (rows for multi-label)."""
        return self.labels[vertices]

    def training_subset(self) -> np.ndarray:
        """Indices of the training split (the sampler's vertex universe)."""
        return self.train_idx


def make_dataset(
    name: str,
    *,
    scale: float = 0.01,
    seed: int = 0,
    avg_degree_cap: float | None = 60.0,
    train_frac: float = 0.66,
    val_frac: float = 0.12,
) -> Dataset:
    """Generate a scaled instance of one of the four paper datasets.

    Parameters
    ----------
    name:
        One of ``"ppi"``, ``"reddit"``, ``"yelp"``, ``"amazon"``.
    scale:
        Fraction of the full vertex count to generate (default 1%).
    avg_degree_cap:
        The Reddit/Amazon profiles have average degrees of 100–165, which
        dominates runtime without changing any algorithmic behaviour; the
        cap (default 60) bounds the generated average degree. Pass ``None``
        to reproduce the full published density.
    """
    key = name.lower()
    if key not in PROFILES:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(PROFILES)}")
    profile = PROFILES[key]
    rng = np.random.default_rng(seed)

    n = max(int(round(profile.full_num_vertices * scale)), 64)
    avg_degree = profile.full_avg_degree
    if avg_degree_cap is not None:
        avg_degree = min(avg_degree, avg_degree_cap)
    # Avg degree can't exceed n - 1 on a simple graph.
    avg_degree = min(avg_degree, n - 1)

    num_blocks = max(profile.num_classes * profile.blocks_per_class, 2)
    # Keep at least ~8 vertices per block so communities are resolvable.
    num_blocks = min(num_blocks, max(n // 8, 2))

    params = DCSBMParams(
        num_vertices=n,
        num_blocks=num_blocks,
        avg_degree=avg_degree,
        exponent=profile.degree_exponent,
        mixing=profile.mixing,
        max_weight_ratio=profile.max_weight_ratio,
    )
    graph, blocks = dcsbm_graph(params, rng=rng)

    if profile.feature_recipe == "svd":
        features = svd_compressed_features(
            blocks, profile.attribute_dim, rng=rng
        )
    else:
        features = gaussian_class_features(
            blocks,
            profile.attribute_dim,
            signal=profile.feature_signal,
            noise=profile.feature_noise,
            rng=rng,
        )
    if profile.feature_smooth_hops > 0:
        features = smooth_features(
            graph, features, hops=profile.feature_smooth_hops, alpha=0.5
        )

    if profile.task == "single":
        labels = single_label_from_blocks(
            blocks, profile.num_classes, flip_prob=profile.label_flip_prob, rng=rng
        )
    else:
        labels = multi_label_from_blocks(
            blocks,
            profile.num_classes,
            labels_per_block=profile.labels_per_block,
            flip_prob=profile.label_flip_prob,
            rng=rng,
        )

    perm = rng.permutation(n)
    n_train = int(round(train_frac * n))
    n_val = int(round(val_frac * n))
    train_idx = np.sort(perm[:n_train])
    val_idx = np.sort(perm[n_train : n_train + n_val])
    test_idx = np.sort(perm[n_train + n_val :])

    return Dataset(
        name=profile.name,
        graph=graph,
        features=features,
        labels=labels,
        train_idx=train_idx,
        val_idx=val_idx,
        test_idx=test_idx,
        task=profile.task,
        num_classes=profile.num_classes,
        profile=profile,
    )


def table1_rows(
    datasets: dict[str, Dataset] | None = None,
) -> list[dict[str, object]]:
    """Rows of Table I: published stats plus (optionally) generated stats.

    When ``datasets`` maps profile names to generated instances, each row
    also reports the generated vertex/edge counts so the bench harness can
    print paper-vs-measured side by side.
    """
    rows: list[dict[str, object]] = []
    for key, profile in PROFILES.items():
        row: dict[str, object] = {
            "dataset": profile.name.upper() if key == "ppi" else profile.name.capitalize(),
            "paper_vertices": profile.full_num_vertices,
            "paper_edges": profile.full_num_edges,
            "attribute_dim": profile.attribute_dim,
            "num_classes": profile.num_classes,
            "task": "M" if profile.task == "multi" else "S",
        }
        if datasets is not None and key in datasets:
            ds = datasets[key]
            row["generated_vertices"] = ds.num_vertices
            row["generated_edges"] = ds.graph.num_edges
            row["generated_avg_degree"] = round(ds.graph.average_degree, 2)
        rows.append(row)
    return rows
