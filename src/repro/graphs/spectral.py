"""Spectral connectivity measures.

The frontier-sampling paper ([5], Ribeiro & Towsley) evaluates samplers on
several graph properties; beyond the combinatorial measures in
:mod:`repro.graphs.stats`, spectral quantities summarize global mixing
structure:

* :func:`spectral_radius_normalized` — the largest eigenvalue of the
  row-stochastic transition matrix ``D^{-1} A`` (1.0 for any graph with
  min degree >= 1; a sanity anchor for the power iteration).
* :func:`second_eigenvalue_normalized` — |λ₂| of ``D^{-1} A``; the
  spectral gap ``1 - |λ₂|`` bounds random-walk mixing time. A sampler
  preserving community structure keeps λ₂ close to the original's.
* :func:`estrada_index_proxy` — log-sum-exp of Lanczos Ritz values, a
  stable subgraph-centrality summary.

Power iteration and a small Lanczos run over the CSR operator — no dense
matrices, so these run on the full dataset graphs.
"""

from __future__ import annotations

import numpy as np

from ..propagation.spmm import MeanAggregator
from .csr import CSRGraph

__all__ = [
    "spectral_radius_normalized",
    "second_eigenvalue_normalized",
    "estrada_index_proxy",
    "spectral_summary",
]


def _transition_matvec(graph: CSRGraph):
    agg = MeanAggregator(graph)

    def matvec(x: np.ndarray) -> np.ndarray:
        return agg.forward(x[:, None])[:, 0]

    return matvec


def spectral_radius_normalized(
    graph: CSRGraph, *, iters: int = 100, seed: int = 0
) -> float:
    """Largest |eigenvalue| of ``D^{-1} A`` by power iteration."""
    n = graph.num_vertices
    if n == 0:
        return 0.0
    matvec = _transition_matvec(graph)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    x /= np.linalg.norm(x)
    lam = 0.0
    for _ in range(iters):
        y = matvec(x)
        norm = np.linalg.norm(y)
        if norm == 0.0:
            return 0.0
        lam = float(x @ y)
        x = y / norm
    return abs(lam)


def second_eigenvalue_normalized(
    graph: CSRGraph, *, iters: int = 200, seed: int = 0
) -> float:
    """|λ₂| of ``D^{-1} A`` via deflated power iteration.

    The dominant eigenpair of the row-stochastic matrix is (1, **1**-ish
    right vector with stationary left vector ∝ degree); deflating against
    the degree-weighted inner product isolates the second mode. Requires
    min degree >= 1 (else the matrix is sub-stochastic and the "known"
    eigenpair assumption breaks — a ValueError explains this).
    """
    n = graph.num_vertices
    if n < 2:
        return 0.0
    if np.any(graph.degrees == 0):
        raise ValueError("second_eigenvalue_normalized requires min degree >= 1")
    matvec = _transition_matvec(graph)
    # Left eigenvector of D^{-1}A for eigenvalue 1 is pi ∝ deg; the right
    # eigenvector is the constant vector. Deflate x against constants in
    # the pi-weighted inner product: x <- x - (pi^T x / pi^T 1) * 1.
    pi = graph.degrees.astype(np.float64)
    pi /= pi.sum()
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    lam = 0.0
    for _ in range(iters):
        x = x - (pi @ x) * np.ones(n)
        norm = np.linalg.norm(x)
        if norm < 1e-300:
            return 0.0
        x /= norm
        y = matvec(x)
        lam = float(x @ y)
        x = y
    return abs(lam)


def estrada_index_proxy(
    graph: CSRGraph, *, rank: int = 16, seed: int = 0
) -> float:
    """``log(sum(exp(theta_i)))`` over Lanczos Ritz values of ``D^{-1}A``.

    A numerically bounded stand-in for the Estrada subgraph-centrality
    index; comparable across graphs of similar size.
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0
    rank = min(rank, n)
    matvec = _transition_matvec(graph)
    rng = np.random.default_rng(seed)
    q = rng.standard_normal(n)
    q /= np.linalg.norm(q)
    alphas: list[float] = []
    betas: list[float] = []
    q_prev = np.zeros(n)
    beta = 0.0
    for _ in range(rank):
        z = matvec(q) - beta * q_prev
        alpha = float(q @ z)
        z = z - alpha * q
        beta = float(np.linalg.norm(z))
        alphas.append(alpha)
        if beta < 1e-12:
            break
        betas.append(beta)
        q_prev = q
        q = z / beta
    t = np.diag(alphas)
    for i, b in enumerate(betas[: len(alphas) - 1]):
        t[i, i + 1] = t[i + 1, i] = b
    ritz = np.linalg.eigvalsh(t)
    m = ritz.max()
    return float(m + np.log(np.exp(ritz - m).sum()))


def spectral_summary(graph: CSRGraph, *, seed: int = 0) -> dict[str, float]:
    """All spectral measures at once (for the sampler-quality ablation)."""
    return {
        "spectral_radius": spectral_radius_normalized(graph, seed=seed),
        "second_eigenvalue": (
            second_eigenvalue_normalized(graph, seed=seed)
            if graph.num_vertices >= 2 and not np.any(graph.degrees == 0)
            else float("nan")
        ),
        "estrada_proxy": estrada_index_proxy(graph, seed=seed),
    }
