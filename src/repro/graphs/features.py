"""Synthetic vertex attributes and labels.

The paper's datasets carry dense attribute vectors (50–602 dims) produced by
upstream pipelines (Word2Vec on Yelp reviews, SVD of bag-of-words on Amazon
item descriptions). These factories produce attributes with the same two
properties that matter downstream:

1. they are *informative* about the planted communities (so a GCN can learn
   and the accuracy curves of Figure 2 behave like the paper's), and
2. they are *noisy enough* that topology helps (a pure-MLP baseline does
   measurably worse than a GCN — verified in the integration tests).

Labels come in the paper's two flavours: single-class (Reddit-style softmax)
and multi-class a.k.a. multi-label (PPI/Yelp/Amazon-style per-class sigmoid).
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "gaussian_class_features",
    "svd_compressed_features",
    "single_label_from_blocks",
    "multi_label_from_blocks",
    "smooth_features",
]


def gaussian_class_features(
    blocks: np.ndarray,
    feature_dim: int,
    *,
    signal: float = 1.0,
    noise: float = 1.0,
    rng: np.random.Generator,
) -> np.ndarray:
    """Class-conditional Gaussian features (Word2Vec analog).

    Each block ``b`` owns a random unit-norm centroid ``mu_b``; vertex
    features are ``signal * mu_{block(v)} + noise * eps_v``. The
    signal-to-noise ratio controls task difficulty.
    """
    blocks = np.asarray(blocks)
    k = int(blocks.max()) + 1 if blocks.size else 0
    centroids = rng.standard_normal((k, feature_dim))
    centroids /= np.linalg.norm(centroids, axis=1, keepdims=True)
    feats = signal * centroids[blocks]
    feats += noise * rng.standard_normal((blocks.shape[0], feature_dim))
    return feats.astype(np.float64)


def svd_compressed_features(
    blocks: np.ndarray,
    feature_dim: int,
    *,
    vocab_size: int | None = None,
    topics_per_block: int = 8,
    words_per_vertex: int = 40,
    rng: np.random.Generator,
) -> np.ndarray:
    """Bag-of-words + truncated-SVD features (Amazon profile analog).

    Simulates the paper's Amazon preprocessing: every block is a mixture of
    ``topics_per_block`` "topics" (sparse word distributions); each vertex
    draws a bag of words from its block's mixture; the sparse count matrix
    is compressed to ``feature_dim`` dims with a randomized truncated SVD.
    """
    blocks = np.asarray(blocks)
    n = blocks.shape[0]
    k = int(blocks.max()) + 1 if n else 0
    if vocab_size is None:
        vocab_size = max(4 * feature_dim, 64)

    # Each topic concentrates on a small random subset of the vocabulary.
    num_topics = k * topics_per_block
    topic_words = rng.integers(0, vocab_size, size=(num_topics, max(4, vocab_size // 16)))

    counts = np.zeros((n, vocab_size), dtype=np.float64)
    # Vectorize over vertices: pick one topic per word draw.
    topic_of_vertex = blocks * topics_per_block + rng.integers(
        0, topics_per_block, size=n
    )
    word_cols = topic_words[
        np.repeat(topic_of_vertex, words_per_vertex),
        rng.integers(0, topic_words.shape[1], size=n * words_per_vertex),
    ]
    word_rows = np.repeat(np.arange(n), words_per_vertex)
    np.add.at(counts, (word_rows, word_cols), 1.0)
    # TF normalization, then randomized range finder + exact SVD on the
    # small projected matrix (classic Halko-Martinsson-Tropp sketch).
    counts /= np.maximum(counts.sum(axis=1, keepdims=True), 1.0)
    sketch = counts @ rng.standard_normal((vocab_size, feature_dim + 8))
    q, _ = np.linalg.qr(sketch)
    b = q.T @ counts
    u_small, s, _ = np.linalg.svd(b, full_matrices=False)
    u = q @ u_small
    feats = (u[:, :feature_dim] * s[:feature_dim]).astype(np.float64)
    # Standardize columns: raw U*S magnitudes shrink with vocabulary size
    # (singular values of a row-normalized count matrix), which would
    # otherwise leave the GCN with near-zero inputs. Real pipelines
    # normalize attributes the same way.
    feats -= feats.mean(axis=0, keepdims=True)
    std = feats.std(axis=0, keepdims=True)
    feats /= np.maximum(std, 1e-12)
    return feats


def smooth_features(
    graph: CSRGraph, features: np.ndarray, *, hops: int = 1, alpha: float = 0.5
) -> np.ndarray:
    """Blend each vertex's features with its neighborhood mean.

    ``h_v <- (1 - alpha) * h_v + alpha * mean_{u ~ v} h_u``, repeated
    ``hops`` times. Makes attributes correlated along edges, which is what
    gives graph convolutions their edge over pure MLPs on real data.
    """
    if features.shape[0] != graph.num_vertices:
        raise ValueError("features row count must equal num_vertices")
    out = features.astype(np.float64, copy=True)
    src = graph.edge_sources()
    deg = np.maximum(graph.degrees.astype(np.float64), 1.0)
    for _ in range(hops):
        agg = np.zeros_like(out)
        np.add.at(agg, src, out[graph.indices])
        agg /= deg[:, None]
        out = (1.0 - alpha) * out + alpha * agg
    return out


def single_label_from_blocks(
    blocks: np.ndarray,
    num_classes: int,
    *,
    flip_prob: float = 0.0,
    rng: np.random.Generator,
) -> np.ndarray:
    """Single-class labels: ``label(v) = block(v) mod num_classes`` + noise.

    Returns an ``int64[n]`` class-id array (Reddit-style task).
    """
    blocks = np.asarray(blocks)
    labels = (blocks % num_classes).astype(np.int64)
    if flip_prob > 0.0:
        flip = rng.random(blocks.shape[0]) < flip_prob
        labels[flip] = rng.integers(0, num_classes, size=int(flip.sum()))
    return labels


def multi_label_from_blocks(
    blocks: np.ndarray,
    num_classes: int,
    *,
    labels_per_block: int = 3,
    flip_prob: float = 0.05,
    rng: np.random.Generator,
) -> np.ndarray:
    """Multi-label targets: each block owns ``labels_per_block`` classes.

    Returns a ``float64[n, num_classes]`` 0/1 matrix (PPI/Yelp/Amazon-style
    task; trained with per-class sigmoid cross-entropy). Every vertex gets
    its block's label set, with independent per-bit flip noise.
    """
    blocks = np.asarray(blocks)
    n = blocks.shape[0]
    k = int(blocks.max()) + 1 if n else 0
    block_label = np.zeros((k, num_classes), dtype=np.float64)
    for b in range(k):
        chosen = rng.choice(num_classes, size=min(labels_per_block, num_classes), replace=False)
        block_label[b, chosen] = 1.0
    y = block_label[blocks]
    if flip_prob > 0.0:
        flips = rng.random(y.shape) < flip_prob
        y = np.where(flips, 1.0 - y, y)
    return y
