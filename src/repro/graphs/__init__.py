"""Graph substrate: CSR topology, synthetic datasets, and statistics."""

from .csr import CSRGraph, edges_to_csr, induced_subgraph
from .datasets import PROFILES, Dataset, DatasetProfile, make_dataset, table1_rows
from .features import (
    gaussian_class_features,
    multi_label_from_blocks,
    single_label_from_blocks,
    smooth_features,
    svd_compressed_features,
)
from .io import (
    load_dataset,
    load_graph,
    read_edge_list,
    save_dataset,
    save_graph,
    write_edge_list,
)
from .partition import bfs_partition, greedy_edge_partition, random_partition
from .spectral import (
    estrada_index_proxy,
    second_eigenvalue_normalized,
    spectral_radius_normalized,
    spectral_summary,
)
from .validate import ValidationError, validate_dataset, validate_graph
from .generators import (
    DCSBMParams,
    chung_lu_graph,
    dcsbm_graph,
    ensure_min_degree,
    grid_graph,
    power_law_weights,
    ring_of_cliques,
)
from .stats import (
    average_local_clustering,
    connected_components,
    connectivity_summary,
    degree_assortativity,
    degree_histogram,
    degree_ks_distance,
    global_clustering_coefficient,
    largest_component_fraction,
)

__all__ = [
    "CSRGraph",
    "edges_to_csr",
    "induced_subgraph",
    "Dataset",
    "DatasetProfile",
    "PROFILES",
    "make_dataset",
    "table1_rows",
    "gaussian_class_features",
    "svd_compressed_features",
    "smooth_features",
    "single_label_from_blocks",
    "multi_label_from_blocks",
    "DCSBMParams",
    "chung_lu_graph",
    "dcsbm_graph",
    "ensure_min_degree",
    "grid_graph",
    "power_law_weights",
    "ring_of_cliques",
    "save_graph",
    "load_graph",
    "save_dataset",
    "load_dataset",
    "write_edge_list",
    "read_edge_list",
    "random_partition",
    "bfs_partition",
    "greedy_edge_partition",
    "spectral_radius_normalized",
    "second_eigenvalue_normalized",
    "estrada_index_proxy",
    "spectral_summary",
    "validate_graph",
    "validate_dataset",
    "ValidationError",
    "degree_histogram",
    "degree_ks_distance",
    "connected_components",
    "largest_component_fraction",
    "global_clustering_coefficient",
    "average_local_clustering",
    "degree_assortativity",
    "connectivity_summary",
]
