"""Vertex partitioners for the Theorem-2 comparison experiments.

Theorem 2's punchline is that *no* graph partitioner is worth running for
the sampled subgraphs: the feature-only plan is a 2-approximation of even
an ideal partitioner. Making that comparison concrete requires actual
partitioners to measure ``gamma_P`` against:

* :func:`random_partition` — the uniform baseline (``gamma_P`` near 1 for
  any graph with average degree above ~P);
* :func:`bfs_partition` — contiguous BFS blocks, a cheap locality
  heuristic with lower ``gamma_P``;
* :func:`greedy_edge_partition` — LDG-style streaming assignment
  (Stanton-Kliot): place each vertex with the neighbor-majority partition,
  penalized by fullness. The strongest of the three, and still far from
  ``1/P`` on small dense subgraphs — which is the paper's point.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = ["random_partition", "bfs_partition", "greedy_edge_partition"]


def _validate(graph: CSRGraph, parts: int) -> None:
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if parts > max(graph.num_vertices, 1):
        raise ValueError("more parts than vertices")


def random_partition(
    graph: CSRGraph, parts: int, *, rng: np.random.Generator
) -> np.ndarray:
    """Near-balanced uniform random assignment."""
    _validate(graph, parts)
    assignment = np.arange(graph.num_vertices) % parts
    rng.shuffle(assignment)
    return assignment


def bfs_partition(
    graph: CSRGraph, parts: int, *, rng: np.random.Generator
) -> np.ndarray:
    """Contiguous BFS blocks of near-equal size.

    Runs one BFS from a random root (restarting on new components) and
    cuts the visit order into ``parts`` equal slices — the classic cheap
    locality partitioner.
    """
    _validate(graph, parts)
    n = graph.num_vertices
    order = np.empty(n, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    pos = 0
    # Deterministic-ish BFS with numpy frontier expansion.
    while pos < n:
        unvisited = np.flatnonzero(~visited)
        root = int(unvisited[rng.integers(unvisited.size)])
        frontier = np.array([root], dtype=np.int64)
        visited[root] = True
        order[pos] = root
        pos += 1
        while frontier.size:
            nbr_chunks = []
            for v in frontier:
                nbrs = graph.neighbors(int(v))
                fresh = nbrs[~visited[nbrs]]
                if fresh.size:
                    fresh = np.unique(fresh)
                    fresh = fresh[~visited[fresh]]
                    visited[fresh] = True
                    nbr_chunks.append(fresh.astype(np.int64))
            if not nbr_chunks:
                break
            frontier = np.concatenate(nbr_chunks)
            order[pos : pos + frontier.size] = frontier
            pos += frontier.size
    assignment = np.empty(n, dtype=np.int64)
    bounds = np.linspace(0, n, parts + 1).astype(int)
    for p in range(parts):
        assignment[order[bounds[p] : bounds[p + 1]]] = p
    return assignment


def greedy_edge_partition(
    graph: CSRGraph, parts: int, *, rng: np.random.Generator, slack: float = 1.1
) -> np.ndarray:
    """Linear deterministic greedy (LDG) streaming partitioner.

    Vertices stream in random order; each goes to the partition holding
    most of its already-placed neighbors, weighted by remaining capacity
    ``(1 - size/capacity)``; ties break uniformly. ``slack`` bounds the
    imbalance (capacity = slack * n / parts).
    """
    _validate(graph, parts)
    if slack < 1.0:
        raise ValueError("slack must be >= 1")
    n = graph.num_vertices
    capacity = slack * n / parts
    assignment = np.full(n, -1, dtype=np.int64)
    sizes = np.zeros(parts, dtype=np.float64)
    for v in rng.permutation(n):
        nbrs = graph.neighbors(int(v))
        placed = assignment[nbrs]
        placed = placed[placed >= 0]
        scores = np.bincount(placed, minlength=parts).astype(np.float64)
        scores *= np.maximum(1.0 - sizes / capacity, 0.0)
        # Fall back to least-full when no neighbor signal (or full ties).
        best = scores.max()
        candidates = (
            np.flatnonzero(scores == best) if best > 0 else np.flatnonzero(
                sizes == sizes.min()
            )
        )
        choice = int(candidates[rng.integers(candidates.size)])
        assignment[v] = choice
        sizes[choice] += 1.0
    return assignment
