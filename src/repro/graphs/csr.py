"""Compressed Sparse Row (CSR) graph engine.

This is the topology substrate every other subsystem consumes: the frontier
sampler probes degrees and neighbor lists, subgraph induction (Algorithm 2,
line 8 of the paper) extracts a vertex-induced :class:`CSRGraph`, and feature
propagation streams the CSR arrays of the sampled subgraph.

The representation is the classic pair of arrays:

* ``indptr``  -- ``int64[n + 1]``; the neighbors of vertex ``v`` live in
  ``indices[indptr[v]:indptr[v + 1]]``.
* ``indices`` -- ``int32[m]``; column indices (neighbor ids).

Graphs are undirected unless stated otherwise and stored with both edge
directions materialized, which matches the paper's datasets (PPI, Reddit,
Yelp, Amazon are all undirected). All operations are vectorized; nothing in
this module loops per-edge in Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CSRGraph", "edges_to_csr", "induced_subgraph"]

# Vertex ids fit in int32 for every dataset profile in this repo (<= ~2M
# vertices); indptr uses int64 so edge counts can exceed 2^31.
VERTEX_DTYPE = np.int32
INDPTR_DTYPE = np.int64


@dataclass(frozen=True)
class CSRGraph:
    """An immutable undirected graph in CSR form.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``.
    indices:
        ``int32`` array of length ``num_edges_directed``; neighbor ids.
        Neighbor lists are sorted ascending within each vertex.
    """

    indptr: np.ndarray
    indices: np.ndarray
    # Cached degree view (indptr diff); computed once in __post_init__.
    _degrees: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=INDPTR_DTYPE)
        indices = np.ascontiguousarray(self.indices, dtype=VERTEX_DTYPE)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D arrays")
        if indptr.shape[0] == 0:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0 or indptr[-1] != indices.shape[0]:
            raise ValueError(
                f"indptr must start at 0 and end at len(indices)={indices.shape[0]}, "
                f"got [{indptr[0]}, {indptr[-1]}]"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = indptr.shape[0] - 1
        if indices.shape[0] and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("indices contain out-of-range vertex ids")
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        degrees = np.diff(indptr).astype(INDPTR_DTYPE)
        degrees.setflags(write=False)
        object.__setattr__(self, "_degrees", degrees)
        indptr.setflags(write=False)
        indices.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.indptr.shape[0] - 1

    @property
    def num_edges_directed(self) -> int:
        """Number of stored (directed) edges; 2x undirected edge count."""
        return self.indices.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (directed count // 2)."""
        return self.indices.shape[0] // 2

    @property
    def degrees(self) -> np.ndarray:
        """Read-only ``int64`` out-degree array of length ``num_vertices``."""
        return self._degrees

    @property
    def average_degree(self) -> float:
        n = self.num_vertices
        return self.num_edges_directed / n if n else 0.0

    def degree(self, v: int) -> int:
        """Number of neighbors of vertex ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of ``v``'s neighbor list (no copy)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, avg_degree={self.average_degree:.2f})"
        )

    # ------------------------------------------------------------------
    # Randomized access (sampler hot path)
    # ------------------------------------------------------------------
    def random_neighbor(self, v: int, rng: np.random.Generator) -> int:
        """Uniform random neighbor of ``v``; raises on isolated vertices."""
        start = self.indptr[v]
        deg = self.indptr[v + 1] - start
        if deg == 0:
            raise ValueError(f"vertex {v} has no neighbors")
        return int(self.indices[start + rng.integers(deg)])

    def random_neighbors(self, vs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Vectorized uniform neighbor selection, one per vertex in ``vs``.

        All vertices in ``vs`` must have degree >= 1.
        """
        vs = np.asarray(vs)
        starts = self.indptr[vs]
        degs = self.indptr[vs + 1] - starts
        if np.any(degs == 0):
            bad = int(vs[np.argmax(degs == 0)])
            raise ValueError(f"vertex {bad} has no neighbors")
        offsets = rng.integers(0, degs)
        return self.indices[starts + offsets].astype(VERTEX_DTYPE, copy=False)

    # ------------------------------------------------------------------
    # Edge views
    # ------------------------------------------------------------------
    def edge_sources(self) -> np.ndarray:
        """Source vertex of every stored directed edge (``int32[m]``)."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self._degrees
        )

    def edge_list(self) -> np.ndarray:
        """All stored directed edges as an ``(m, 2) int32`` array."""
        return np.column_stack((self.edge_sources(), self.indices))

    def has_edge(self, u: int, v: int) -> bool:
        """True when the directed edge (u, v) is stored (binary search)."""
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < nbrs.shape[0] and nbrs[i] == v)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, vertices: np.ndarray) -> tuple["CSRGraph", np.ndarray]:
        """Vertex-induced subgraph (Algorithm 2, line 8).

        Parameters
        ----------
        vertices:
            Vertex ids to keep. Duplicates are removed; order is not
            preserved (the subgraph uses sorted-unique order).

        Returns
        -------
        (subgraph, vertex_map):
            ``subgraph`` relabels vertices to ``0..k-1``; ``vertex_map[i]``
            is the original id of subgraph vertex ``i``.
        """
        return induced_subgraph(self, vertices)

    def with_self_loops(self) -> "CSRGraph":
        """Return a copy with a self-loop added to every vertex.

        The paper follows GraphSAGE in adding a self-connection to each
        vertex before propagation (Section V-B: ``V(i) ⊆ V(i)_src``).
        Existing self-loops are preserved, and exactly one new loop is
        added per vertex that lacks one.
        """
        n = self.num_vertices
        src = self.edge_sources()
        has_loop = np.zeros(n, dtype=bool)
        loops = src[src == self.indices]
        has_loop[loops] = True
        missing = np.flatnonzero(~has_loop).astype(VERTEX_DTYPE)
        new_src = np.concatenate([src, missing])
        new_dst = np.concatenate([self.indices, missing])
        return edges_to_csr(
            np.column_stack((new_src, new_dst)), n, symmetrize=False, dedup=False
        )

    def is_symmetric(self) -> bool:
        """True when every stored edge (u, v) has its reverse (v, u)."""
        src = self.edge_sources()
        fwd = src.astype(np.int64) * self.num_vertices + self.indices
        bwd = self.indices.astype(np.int64) * self.num_vertices + src
        return bool(np.array_equal(np.sort(fwd), np.sort(bwd)))


def edges_to_csr(
    edges: np.ndarray,
    num_vertices: int,
    *,
    symmetrize: bool = True,
    dedup: bool = True,
    drop_self_loops: bool = False,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an ``(m, 2)`` edge array.

    Parameters
    ----------
    edges:
        Integer array of shape ``(m, 2)``; each row is one edge ``(u, v)``.
    num_vertices:
        Total vertex count ``n`` (isolated vertices are allowed).
    symmetrize:
        When True (default) every edge is stored in both directions.
    dedup:
        When True (default) parallel edges are collapsed.
    drop_self_loops:
        When True rows with ``u == v`` are discarded before building.
    """
    edges = np.asarray(edges)
    if edges.size == 0:
        edges = np.empty((0, 2), dtype=VERTEX_DTYPE)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
    src = edges[:, 0].astype(np.int64, copy=False)
    dst = edges[:, 1].astype(np.int64, copy=False)
    if src.size and (
        src.min() < 0 or dst.min() < 0 or src.max() >= num_vertices or dst.max() >= num_vertices
    ):
        raise ValueError("edge endpoints out of range")
    if drop_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    if symmetrize:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    # Sort by (src, dst) via a single composite key, then optionally dedup.
    key = src * num_vertices + dst
    order = np.argsort(key, kind="stable")
    key = key[order]
    if dedup and key.size:
        keep = np.empty(key.shape, dtype=bool)
        keep[0] = True
        np.not_equal(key[1:], key[:-1], out=keep[1:])
        key = key[keep]
    src_sorted = (key // num_vertices).astype(VERTEX_DTYPE)
    dst_sorted = (key % num_vertices).astype(VERTEX_DTYPE)
    counts = np.bincount(src_sorted, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=INDPTR_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr=indptr, indices=dst_sorted)


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Extract the subgraph induced by ``vertices`` (vectorized).

    Keeps every edge of ``graph`` whose endpoints are both in ``vertices``
    and relabels the kept vertices to ``0..k-1`` in sorted-id order.

    Returns ``(subgraph, vertex_map)`` where ``vertex_map[i]`` is the
    original id of new vertex ``i``.
    """
    vertex_map = np.unique(np.asarray(vertices, dtype=VERTEX_DTYPE))
    if vertex_map.size == 0:
        return (
            CSRGraph(
                indptr=np.zeros(1, dtype=INDPTR_DTYPE),
                indices=np.empty(0, dtype=VERTEX_DTYPE),
            ),
            vertex_map,
        )
    n = graph.num_vertices
    # Dense old->new lookup; -1 marks vertices outside the subgraph. For the
    # subgraph sizes used in training (n_sub << n) this trades O(n) memory
    # for branch-free relabeling of all candidate edges at once.
    lookup = np.full(n, -1, dtype=VERTEX_DTYPE)
    lookup[vertex_map] = np.arange(vertex_map.size, dtype=VERTEX_DTYPE)

    # Gather the concatenated neighbor lists of the kept vertices.
    starts = graph.indptr[vertex_map]
    ends = graph.indptr[vertex_map + 1]
    lengths = ends - starts
    total = int(lengths.sum())
    if total == 0:
        indptr = np.zeros(vertex_map.size + 1, dtype=INDPTR_DTYPE)
        return CSRGraph(indptr=indptr, indices=np.empty(0, dtype=VERTEX_DTYPE)), vertex_map

    # Build a flat gather index covering all neighbor slices without a
    # Python loop: for each kept vertex, indices start..end-1.
    gather = np.repeat(starts, lengths) + _ranges_within(lengths)
    nbrs = graph.indices[gather]
    new_nbrs = lookup[nbrs]
    new_src = np.repeat(np.arange(vertex_map.size, dtype=VERTEX_DTYPE), lengths)
    keep = new_nbrs >= 0
    new_src = new_src[keep]
    new_nbrs = new_nbrs[keep]

    counts = np.bincount(new_src, minlength=vertex_map.size)
    indptr = np.zeros(vertex_map.size + 1, dtype=INDPTR_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    # Neighbor lists inherit the sorted order of the parent graph after
    # relabeling only if the relabeling is monotone — which it is, because
    # vertex_map is sorted. So new_nbrs within each source slice is sorted.
    return CSRGraph(indptr=indptr, indices=new_nbrs), vertex_map


def _ranges_within(lengths: np.ndarray) -> np.ndarray:
    """``[0..l0-1, 0..l1-1, ...]`` for the given slice lengths (vectorized).

    Zero-length slices contribute nothing. Implemented as a flat arange
    minus each element's slice-start offset.
    """
    lengths = np.asarray(lengths, dtype=INDPTR_DTYPE)
    total = int(lengths.sum())
    starts = np.zeros(lengths.shape[0], dtype=INDPTR_DTYPE)
    if lengths.shape[0] > 1:
        np.cumsum(lengths[:-1], out=starts[1:])
    flat = np.arange(total, dtype=INDPTR_DTYPE)
    return flat - np.repeat(starts, lengths)
