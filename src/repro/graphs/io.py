"""Graph and dataset serialization.

Datasets take seconds to generate but experiments re-use them across
processes (the CLI, benches and examples); these helpers persist a
:class:`CSRGraph` or a full :class:`Dataset` as a single ``.npz`` archive,
plus a plain edge-list text format for interop with external tools
(SNAP-style ``u v`` lines, the format the paper's datasets ship in).
"""

from __future__ import annotations

import pathlib

import numpy as np

from .csr import CSRGraph, edges_to_csr
from .datasets import Dataset

__all__ = [
    "save_graph",
    "load_graph",
    "save_dataset",
    "load_dataset",
    "write_edge_list",
    "read_edge_list",
]


def _with_npz(path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def save_graph(graph: CSRGraph, path: str | pathlib.Path) -> pathlib.Path:
    """Persist a graph's CSR arrays; returns the final path."""
    path = _with_npz(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, indptr=graph.indptr, indices=graph.indices)
    return path


def load_graph(path: str | pathlib.Path) -> CSRGraph:
    """Load a graph previously written by :func:`save_graph`."""
    with np.load(path) as data:
        return CSRGraph(indptr=data["indptr"].copy(), indices=data["indices"].copy())


def save_dataset(dataset: Dataset, path: str | pathlib.Path) -> pathlib.Path:
    """Persist a full dataset (topology, features, labels, splits)."""
    path = _with_npz(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        indptr=dataset.graph.indptr,
        indices=dataset.graph.indices,
        features=dataset.features,
        labels=dataset.labels,
        train_idx=dataset.train_idx,
        val_idx=dataset.val_idx,
        test_idx=dataset.test_idx,
        name=np.array(dataset.name),
        task=np.array(dataset.task),
        num_classes=np.array(dataset.num_classes),
    )
    return path


def load_dataset(path: str | pathlib.Path) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    with np.load(path) as data:
        graph = CSRGraph(
            indptr=data["indptr"].copy(), indices=data["indices"].copy()
        )
        return Dataset(
            name=str(data["name"]),
            graph=graph,
            features=data["features"].copy(),
            labels=data["labels"].copy(),
            train_idx=data["train_idx"].copy(),
            val_idx=data["val_idx"].copy(),
            test_idx=data["test_idx"].copy(),
            task=str(data["task"]),  # type: ignore[arg-type]
            num_classes=int(data["num_classes"]),
        )


def write_edge_list(
    graph: CSRGraph, path: str | pathlib.Path, *, directed: bool = False
) -> pathlib.Path:
    """Write a SNAP-style edge list (``u v`` per line, ``#`` header).

    With ``directed=False`` (default) each undirected edge appears once
    (``u <= v``).
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    edges = graph.edge_list()
    if not directed:
        edges = edges[edges[:, 0] <= edges[:, 1]]
    with path.open("w") as fh:
        fh.write(f"# repro graph: {graph.num_vertices} vertices\n")
        np.savetxt(fh, edges, fmt="%d")
    return path


def read_edge_list(
    path: str | pathlib.Path, *, num_vertices: int | None = None
) -> CSRGraph:
    """Read a SNAP-style edge list; symmetrizes and dedups."""
    path = pathlib.Path(path)
    rows = np.loadtxt(path, dtype=np.int64, comments="#", ndmin=2)
    if rows.size == 0:
        rows = np.empty((0, 2), dtype=np.int64)
    if num_vertices is None:
        num_vertices = int(rows.max()) + 1 if rows.size else 0
        # A header comment may still declare isolated trailing vertices;
        # the caller passes num_vertices explicitly to preserve them.
    return edges_to_csr(rows, num_vertices)
