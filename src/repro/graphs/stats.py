"""Graph statistics and connectivity measures.

Section III-C of the paper argues the frontier sampler is a good GCN
sampler because (per Ribeiro & Towsley's frontier-sampling paper) its
subgraphs "approximate the original graph with respect to multiple
connectivity measures". This module implements those measures so the test
suite and the sampler-comparison ablation (experiment X4) can check the
claim quantitatively:

* degree-distribution distance (KS statistic on normalized degrees),
* global and average-local clustering coefficient,
* connected components / fraction in largest component,
* degree assortativity.

All of these are vectorized over CSR arrays; only the component search uses
a (frontier-array) BFS loop, which is O(n + m) with numpy inner steps.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "degree_histogram",
    "degree_ks_distance",
    "connected_components",
    "largest_component_fraction",
    "global_clustering_coefficient",
    "average_local_clustering",
    "degree_assortativity",
    "connectivity_summary",
]


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """Counts of vertices per degree value (index = degree)."""
    return np.bincount(graph.degrees.astype(np.int64))


def degree_ks_distance(a: CSRGraph, b: CSRGraph) -> float:
    """Kolmogorov–Smirnov distance between the two degree distributions.

    Degrees are compared on their raw scale; the statistic is the max
    absolute difference of empirical CDFs. 0 = identical distributions.
    """
    da = np.sort(a.degrees)
    db = np.sort(b.degrees)
    grid = np.union1d(da, db)
    cdf_a = np.searchsorted(da, grid, side="right") / max(da.size, 1)
    cdf_b = np.searchsorted(db, grid, side="right") / max(db.size, 1)
    return float(np.abs(cdf_a - cdf_b).max(initial=0.0))


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component id per vertex via frontier-array BFS (O(n + m))."""
    n = graph.num_vertices
    comp = np.full(n, -1, dtype=np.int64)
    next_comp = 0
    unvisited = np.ones(n, dtype=bool)
    while True:
        seeds = np.flatnonzero(unvisited)
        if seeds.size == 0:
            break
        root = seeds[0]
        comp[root] = next_comp
        unvisited[root] = False
        frontier = np.array([root], dtype=np.int64)
        while frontier.size:
            starts = graph.indptr[frontier]
            lengths = graph.indptr[frontier + 1] - starts
            if lengths.sum() == 0:
                break
            gather = np.repeat(starts, lengths) + _flat_aranges(lengths)
            nbrs = graph.indices[gather]
            nbrs = np.unique(nbrs)
            new = nbrs[unvisited[nbrs]]
            comp[new] = next_comp
            unvisited[new] = False
            frontier = new.astype(np.int64)
        next_comp += 1
    return comp


def largest_component_fraction(graph: CSRGraph) -> float:
    """Fraction of vertices contained in the largest connected component."""
    n = graph.num_vertices
    if n == 0:
        return 0.0
    comp = connected_components(graph)
    return float(np.bincount(comp).max() / n)


def _closed_wedge_counts(graph: CSRGraph) -> np.ndarray:
    """Per-vertex closed-wedge counts (= 2 * triangles through the vertex).

    ``closed[u] = sum over v in N(u) of |N(u) ∩ N(v)|``, computed by merging
    sorted neighbor lists with ``searchsorted``. Assumes a simple graph (no
    self-loops, no parallel edges) — which every generator in this package
    guarantees — so common neighbors of an edge (u, v) never include u or v.
    """
    n = graph.num_vertices
    closed = np.zeros(n, dtype=np.float64)
    indices = graph.indices
    indptr = graph.indptr
    for u in range(n):
        nbrs_u = indices[indptr[u] : indptr[u + 1]]
        if nbrs_u.size < 2:
            continue
        # One vectorized intersection query per neighbor block: gather the
        # concatenated neighbor lists of all v in N(u), then count members
        # that also appear in N(u).
        starts = indptr[nbrs_u]
        lengths = indptr[nbrs_u.astype(np.int64) + 1] - starts
        gather = np.repeat(starts, lengths) + _flat_aranges(lengths)
        candidates = indices[gather]
        pos = np.searchsorted(nbrs_u, candidates)
        in_range = pos < nbrs_u.size
        hits = np.zeros(candidates.shape[0], dtype=bool)
        hits[in_range] = nbrs_u[pos[in_range]] == candidates[in_range]
        closed[u] = float(hits.sum())
    return closed


def global_clustering_coefficient(graph: CSRGraph) -> float:
    """Transitivity: 3 * triangles / open-or-closed wedges."""
    deg = graph.degrees.astype(np.float64)
    wedges = float((deg * (deg - 1.0)).sum())
    if wedges == 0.0:
        return 0.0
    return float(_closed_wedge_counts(graph).sum()) / wedges


def average_local_clustering(graph: CSRGraph) -> float:
    """Mean over vertices of local clustering (0 for degree < 2)."""
    deg = graph.degrees.astype(np.float64)
    closed = _closed_wedge_counts(graph)
    denom = deg * (deg - 1.0)
    local = np.divide(closed, denom, out=np.zeros_like(closed), where=denom > 0)
    n = graph.num_vertices
    return float(local.sum() / n) if n else 0.0


def degree_assortativity(graph: CSRGraph) -> float:
    """Pearson correlation of endpoint degrees over all directed edges."""
    if graph.num_edges_directed == 0:
        return 0.0
    deg = graph.degrees.astype(np.float64)
    x = deg[graph.edge_sources()]
    y = deg[graph.indices]
    sx, sy = x.std(), y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))


def connectivity_summary(graph: CSRGraph) -> dict[str, float]:
    """All measures at once; used by the sampler-quality ablation."""
    return {
        "num_vertices": float(graph.num_vertices),
        "num_edges": float(graph.num_edges),
        "avg_degree": graph.average_degree,
        "largest_component_fraction": largest_component_fraction(graph),
        "global_clustering": global_clustering_coefficient(graph),
        "assortativity": degree_assortativity(graph),
    }


def _flat_aranges(lengths: np.ndarray) -> np.ndarray:
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    starts = np.zeros(lengths.shape[0], dtype=np.int64)
    if lengths.shape[0] > 1:
        np.cumsum(lengths[:-1], out=starts[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)
