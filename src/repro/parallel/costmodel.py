"""Operation accounting and conversion to simulated parallel time.

Algorithms in this repo run serially but *meter* themselves: every random
number drawn, memory word touched, DRAM byte streamed and floating-point
operation executed is counted in a :class:`CostCounter`. The counters are
then converted into simulated execution time on a :class:`MachineSpec` for
a given worker count — which is how the scaling figures are regenerated on
a single-core host.

The conversion implements the paper's own model:

* sequential sections pay full cost;
* perfectly-parallel memory/flop work divides by ``p`` (with an optional
  NUMA factor on shared-structure traffic);
* vectorizable work divides by the achieved lane utilization, which the
  caller reports per chunk (a degree-3 vertex fills 3 of 8 AVX lanes —
  that under-utilization is what caps Figure 4B's AVX gain near 4x).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .machine import MachineSpec

__all__ = ["CostCounter", "simulated_time", "parallel_time"]


@dataclass
class CostCounter:
    """Mutable tally of machine-level operations.

    ``mem_ops`` counts word-granularity touches to *shared* data (pay NUMA),
    ``private_mem_ops`` touches to core-private data (cache-resident, no
    NUMA), ``vector_chunks`` accumulates (elements, chunks) so lane
    utilization = elements / (chunks * lanes).
    """

    rand_ops: float = 0.0
    mem_ops: float = 0.0
    private_mem_ops: float = 0.0
    dram_bytes: float = 0.0
    flops: float = 0.0
    # Vectorizable element count and the number of vector chunks it was
    # issued as (each chunk = one vector instruction at full lane width).
    vector_elements: float = 0.0
    vector_chunks: float = 0.0

    def add(self, other: "CostCounter") -> None:
        """Accumulate another counter's tallies into this one."""
        self.rand_ops += other.rand_ops
        self.mem_ops += other.mem_ops
        self.private_mem_ops += other.private_mem_ops
        self.dram_bytes += other.dram_bytes
        self.flops += other.flops
        self.vector_elements += other.vector_elements
        self.vector_chunks += other.vector_chunks

    def copy(self) -> "CostCounter":
        """Independent copy of the current tallies."""
        return CostCounter(
            rand_ops=self.rand_ops,
            mem_ops=self.mem_ops,
            private_mem_ops=self.private_mem_ops,
            dram_bytes=self.dram_bytes,
            flops=self.flops,
            vector_elements=self.vector_elements,
            vector_chunks=self.vector_chunks,
        )

    def count_vector_op(self, elements: int, lanes: int) -> None:
        """Record ``elements`` of work issued as width-``lanes`` vectors."""
        if elements < 0 or lanes <= 0:
            raise ValueError("elements must be >= 0 and lanes > 0")
        self.vector_elements += elements
        self.vector_chunks += -(-elements // lanes)

    @property
    def lane_utilization(self) -> float:
        """Average fraction of vector lanes doing useful work (0..1]."""
        if self.vector_chunks == 0:
            return 1.0
        # utilization relative to issuing each chunk at full width; the
        # denominator lanes cancels in the time formula, so store the ratio
        # of elements to chunks and normalize at conversion time.
        return self.vector_elements / self.vector_chunks

    def serial_cost(self, machine: MachineSpec) -> float:
        """Total cost units when executed on one scalar core."""
        return (
            self.rand_ops * machine.cost_rand
            + (self.mem_ops + self.private_mem_ops) * machine.cost_mem
            + self.dram_bytes * machine.dram_cost_per_byte
            + self.flops * machine.cost_flop
            + self.vector_elements * machine.cost_mem
        )


def simulated_time(
    counter: CostCounter,
    machine: MachineSpec,
    *,
    cores: int = 1,
    vectorized: bool = False,
    numa_shared: bool = True,
    serial_fraction: float = 0.0,
) -> float:
    """Simulated execution time of metered work on ``cores`` workers.

    Parameters
    ----------
    vectorized:
        When True, the ``vector_*`` tallies execute as vector chunks (time
        = chunks) instead of element-at-a-time (time = elements).
    numa_shared:
        Apply the machine's NUMA factor to shared-memory traffic.
    serial_fraction:
        Fraction of the total that cannot be parallelized (Amdahl term).
    """
    if cores <= 0:
        raise ValueError("cores must be positive")
    numa = machine.numa_factor(cores) if numa_shared else 1.0
    shared_mem = counter.mem_ops * machine.cost_mem * numa
    private_mem = counter.private_mem_ops * machine.cost_mem
    dram = counter.dram_bytes * machine.dram_cost_per_byte * numa
    flops = counter.flops * machine.cost_flop
    if vectorized:
        vec = counter.vector_chunks * machine.cost_mem * numa
    else:
        vec = counter.vector_elements * machine.cost_mem * numa
    rand = counter.rand_ops * machine.cost_rand
    total = shared_mem + private_mem + dram + flops + vec + rand
    serial = total * serial_fraction
    parallelizable = total - serial
    return serial + parallelizable / cores


def parallel_time(task_costs: list[float], cores: int) -> float:
    """Greedy (LPT) makespan of independent tasks on ``cores`` workers.

    Used for inter-subgraph parallelism: each sampler instance is one
    task. LPT is a 4/3-approximation of the optimal makespan, adequate for
    a simulator and matching how a work-stealing pool behaves in practice.
    """
    if cores <= 0:
        raise ValueError("cores must be positive")
    if not task_costs:
        return 0.0
    if cores == 1:
        return float(sum(task_costs))
    loads = [0.0] * min(cores, len(task_costs))
    for cost in sorted(task_costs, reverse=True):
        i = loads.index(min(loads))
        loads[i] += cost
    return max(loads)
