"""Simulated shared-memory machine specification.

The paper's experiments run on a dual-socket 20-core-per-socket Intel Xeon
E5-2698 v4 with AVX2 (8-wide 32-bit vectors), 256 KB private L2 per core
and DDR4 DRAM. That hardware is not available here, so scaling experiments
execute the *real* algorithms serially while charging their operations to a
:class:`MachineSpec` via the cost model in :mod:`repro.parallel.costmodel`.

The spec carries exactly the parameters the paper's own analysis uses:

* ``cost_mem`` / ``cost_rand`` — the COSTmem / COSTrand primitives of Eq. 2;
* ``vector_lanes`` — AVX width, the paper's p_intra = 8;
* ``l2_bytes`` — the 256 KB cache bound of Theorem 2's constraint
  ``8 n f / Q <= S_cache``;
* ``numa_remote_penalty`` — multiplicative slowdown for memory traffic when
  samplers span sockets (the observed 20-to-40-core knee of Figure 4A);
* ``gemm_serial_fraction`` — MKL-like dense-kernel scaling: an Amdahl
  serial term capping speedup around 16x at 40 cores (Section VI-C4
  speculates "thread and buffer management" as the cause);
* ``dram_saturation_cores`` — aggregate memory bandwidth ceiling that
  bounds streaming-kernel (feature propagation) scaling near 25x.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineSpec", "xeon_40core", "laptop_4core"]


@dataclass(frozen=True)
class MachineSpec:
    """Cost-model parameters of a shared-memory parallel platform."""

    num_cores: int = 40
    cores_per_socket: int = 20
    vector_lanes: int = 8
    l2_bytes: int = 256 * 1024
    l2_line_bytes: int = 64
    # Relative cost units; the paper's analysis assumes COSTmem == COSTrand.
    cost_mem: float = 1.0
    cost_rand: float = 1.0
    cost_flop: float = 0.05
    # Irregular gather-accumulate cost per element (feature aggregation):
    # dependent loads through an index array cannot be FMA-pipelined the
    # way GEMM flops can, hence ~40x the effective per-op cost of a flop.
    cost_gather: float = 2.0
    # Cross-socket (NUMA) penalty on shared read-mostly structures: memory
    # ops pay this multiplier once sampler instances span both sockets.
    numa_remote_penalty: float = 1.35
    # Sampler memory-contention slopes (per-instance slowdown per extra
    # concurrent instance): intra-socket and the steeper cross-socket term.
    # Calibrated so Figure 4A reproduces the paper's ~4.5/8/12/15x curve at
    # p_inter = 5/10/20/40.
    mem_contention_local: float = 0.030
    mem_contention_remote: float = 0.055
    # DRAM streaming cost per byte relative to cost_mem per 8-byte word.
    dram_cost_per_byte: float = 0.125
    # Aggregate DRAM bandwidth saturates: streaming traffic parallelizes
    # only up to this many cores (the paper's feature propagation tops out
    # near 25x on 40 cores; its compute fraction pushes the blend above the
    # raw bandwidth ceiling).
    dram_saturation_cores: float = 26.0
    # GEMM (MKL stand-in): Amdahl serial fraction covering the library's
    # internal thread/buffer management, which the paper speculates caps
    # weight-application scaling near 16x on 40 cores (Section VI-C4).
    gemm_serial_fraction: float = 0.035

    def __post_init__(self) -> None:
        if self.num_cores <= 0 or self.cores_per_socket <= 0:
            raise ValueError("core counts must be positive")
        if self.num_cores % self.cores_per_socket:
            raise ValueError("num_cores must be a multiple of cores_per_socket")
        if self.vector_lanes <= 0:
            raise ValueError("vector_lanes must be positive")
        if self.l2_bytes <= 0:
            raise ValueError("l2_bytes must be positive")
        if min(self.cost_mem, self.cost_rand, self.cost_flop) < 0:
            raise ValueError("costs must be non-negative")
        if self.numa_remote_penalty < 1.0:
            raise ValueError("numa_remote_penalty must be >= 1")
        if self.dram_saturation_cores <= 0:
            raise ValueError("dram_saturation_cores must be positive")
        if not (0.0 <= self.gemm_serial_fraction < 1.0):
            raise ValueError("gemm_serial_fraction must lie in [0, 1)")

    @property
    def num_sockets(self) -> int:
        return self.num_cores // self.cores_per_socket

    def sockets_used(self, cores: int) -> int:
        """Sockets spanned when ``cores`` workers are bound contiguously."""
        if cores <= 0:
            raise ValueError("cores must be positive")
        cores = min(cores, self.num_cores)
        return -(-cores // self.cores_per_socket)

    def sampler_contention_factor(self, instances: int) -> float:
        """Per-instance memory slowdown with ``instances`` busy samplers.

        Concurrent sampler instances contend on the memory system: the
        shared adjacency list and their DB append streams all hit the same
        controllers. Slowdown grows linearly with socket occupancy
        (``mem_contention_local`` per extra core) and faster once
        instances spill across sockets (``mem_contention_remote`` per
        remote core — the NUMA knee the paper observes between 20 and 40
        cores in Figure 4A).
        """
        if instances <= 0:
            raise ValueError("instances must be positive")
        instances = min(instances, self.num_cores)
        local = min(instances, self.cores_per_socket)
        remote = instances - local
        return (
            1.0
            + self.mem_contention_local * (local - 1)
            + self.mem_contention_remote * remote
        )

    def numa_factor(self, cores: int) -> float:
        """Average memory-cost multiplier for ``cores`` bound workers.

        Workers on socket 0 pay 1.0; workers on further sockets pay the
        remote penalty on the shared read-mostly data (the training graph
        adjacency lists live on one socket's memory controller).
        """
        cores = min(max(cores, 1), self.num_cores)
        local = min(cores, self.cores_per_socket)
        remote = cores - local
        return (local * 1.0 + remote * self.numa_remote_penalty) / cores

    def with_cores(self, num_cores: int) -> "MachineSpec":
        """Copy of this spec restricted/expanded to ``num_cores``."""
        cps = min(self.cores_per_socket, num_cores)
        if num_cores % cps:
            cps = num_cores  # degenerate single-socket layout
        return replace(self, num_cores=num_cores, cores_per_socket=cps)


def xeon_40core() -> MachineSpec:
    """The paper's platform: dual-socket 40-core Xeon E5-2698 v4, AVX2."""
    return MachineSpec()


def laptop_4core() -> MachineSpec:
    """A small single-socket machine (useful in tests and examples)."""
    return MachineSpec(
        num_cores=4,
        cores_per_socket=4,
        vector_lanes=4,
        l2_bytes=512 * 1024,
    )
