"""Work-span executor: simulate ``pardo`` regions on the machine model.

The paper's Algorithms 3-4 are written with ``pardo`` loops (statically
chunked parallel-for) and barriers. This executor evaluates such programs
on a :class:`MachineSpec`: the caller describes each parallel region as
per-task costs; the executor returns the simulated makespan under static
chunking (each worker takes a contiguous chunk — the OpenMP-static model
the paper's C++ implementation uses) or dynamic (LPT) scheduling, and
accumulates a critical-path (span) total across regions separated by
barriers.

It is the general-purpose counterpart to the special-cased models used by
the sampler and propagator, and is exercised by the Algorithm-4 simulation
tests (probing, chunked invalidation, cleanup moves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .costmodel import parallel_time
from .machine import MachineSpec

__all__ = ["ParallelRegion", "WorkSpanExecutor", "static_chunk_makespan"]


def static_chunk_makespan(task_costs: Sequence[float], workers: int) -> float:
    """Makespan of contiguous static chunking (OpenMP ``schedule(static)``).

    Tasks are split into ``workers`` contiguous chunks of near-equal
    *count* (not cost); the makespan is the heaviest chunk. Matches how
    the paper parallelizes per-entry DB updates where task order is fixed
    by memory layout.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    costs = np.asarray(task_costs, dtype=np.float64)
    if costs.size == 0:
        return 0.0
    bounds = np.linspace(0, costs.size, min(workers, costs.size) + 1).astype(int)
    return float(
        max(costs[lo:hi].sum() for lo, hi in zip(bounds[:-1], bounds[1:]))
    )


@dataclass(frozen=True)
class ParallelRegion:
    """One barrier-delimited parallel region.

    Attributes
    ----------
    name:
        Label for traces.
    task_costs:
        Cost of each independent task in the region.
    schedule:
        ``"static"`` (contiguous chunks) or ``"dynamic"`` (LPT work pool).
    serial_cost:
        Work executed by a single worker before the parallel part (e.g.
        the cumulative-sum in para_CLEANUP).
    """

    name: str
    task_costs: tuple[float, ...]
    schedule: str = "static"
    serial_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.schedule not in ("static", "dynamic"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if self.serial_cost < 0 or any(c < 0 for c in self.task_costs):
            raise ValueError("costs must be non-negative")

    @property
    def total_work(self) -> float:
        return self.serial_cost + float(sum(self.task_costs))

    def makespan(self, workers: int) -> float:
        """Simulated completion time of this region on ``workers``."""
        if self.schedule == "static":
            par = static_chunk_makespan(self.task_costs, workers)
        else:
            par = parallel_time(list(self.task_costs), workers)
        return self.serial_cost + par


@dataclass
class WorkSpanExecutor:
    """Accumulates barrier-separated regions into work/span totals.

    ``work`` is the serial total (T1); ``span`` is the simulated parallel
    time with ``workers`` workers (T_p, lower-bounded by the per-region
    critical path). ``speedup`` = T1 / T_p — the quantity the paper's
    scalability claims are stated in.
    """

    machine: MachineSpec
    workers: int
    regions: list[ParallelRegion] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.workers > self.machine.num_cores:
            raise ValueError(
                f"workers {self.workers} exceed machine cores {self.machine.num_cores}"
            )

    def run(self, region: ParallelRegion) -> float:
        """Record one region; returns its simulated makespan."""
        self.regions.append(region)
        return region.makespan(self.workers)

    def run_many(self, regions: Iterable[ParallelRegion]) -> float:
        """Record several regions; returns their summed makespans."""
        return sum(self.run(r) for r in regions)

    @property
    def work(self) -> float:
        return sum(r.total_work for r in self.regions)

    @property
    def span(self) -> float:
        return sum(r.makespan(self.workers) for r in self.regions)

    @property
    def speedup(self) -> float:
        s = self.span
        return self.work / s if s > 0 else 1.0

    def region_breakdown(self) -> dict[str, float]:
        """Simulated time by region name (summed across repetitions)."""
        out: dict[str, float] = {}
        for r in self.regions:
            out[r.name] = out.get(r.name, 0.0) + r.makespan(self.workers)
        return out
