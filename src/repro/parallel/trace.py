"""Execution traces: named phases of simulated time.

The Figure 3 breakdown ("Weight Application / Feat Propagation / Sampling")
is regenerated from these traces: the trainer records one
:class:`PhaseRecord` per training phase per iteration, and the experiment
harness aggregates them into per-phase totals and fractions.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["PhaseRecord", "ExecutionTrace"]


@dataclass(frozen=True)
class PhaseRecord:
    """One timed phase: name + simulated duration (cost units)."""

    phase: str
    simulated_time: float
    iteration: int = -1

    def __post_init__(self) -> None:
        if self.simulated_time < 0:
            raise ValueError("simulated_time must be non-negative")


@dataclass
class ExecutionTrace:
    """Append-only log of phase records with aggregation helpers."""

    records: list[PhaseRecord] = field(default_factory=list)

    def record(self, phase: str, simulated_time: float, iteration: int = -1) -> None:
        """Append one phase record."""
        self.records.append(PhaseRecord(phase, simulated_time, iteration))

    def total(self, phase: str | None = None) -> float:
        """Total simulated time, optionally restricted to one phase."""
        if phase is None:
            return sum(r.simulated_time for r in self.records)
        return sum(r.simulated_time for r in self.records if r.phase == phase)

    def totals_by_phase(self) -> dict[str, float]:
        """Summed simulated time per phase name."""
        out: dict[str, float] = defaultdict(float)
        for r in self.records:
            out[r.phase] += r.simulated_time
        return dict(out)

    def breakdown(self) -> dict[str, float]:
        """Per-phase fraction of total simulated time (sums to 1)."""
        totals = self.totals_by_phase()
        grand = sum(totals.values())
        if grand == 0.0:
            return {k: 0.0 for k in totals}
        return {k: v / grand for k, v in totals.items()}

    def phases(self) -> list[str]:
        """Phase names in order of first appearance."""
        seen: list[str] = []
        for r in self.records:
            if r.phase not in seen:
                seen.append(r.phase)
        return seen

    def merge(self, other: "ExecutionTrace") -> None:
        """Append another trace's records to this one."""
        self.records.extend(other.records)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_csv(self, path) -> None:
        """Write records as CSV (``iteration,phase,simulated_time``)."""
        import pathlib

        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = ["iteration,phase,simulated_time"]
        lines += [
            f"{r.iteration},{r.phase},{r.simulated_time!r}" for r in self.records
        ]
        path.write_text("\n".join(lines) + "\n")

    def to_json(self, path) -> None:
        """Write records plus per-phase totals as a JSON document."""
        import json
        import pathlib

        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "records": [
                {
                    "iteration": r.iteration,
                    "phase": r.phase,
                    "simulated_time": r.simulated_time,
                }
                for r in self.records
            ],
            "totals_by_phase": self.totals_by_phase(),
            "breakdown": self.breakdown(),
        }
        path.write_text(json.dumps(doc, indent=2) + "\n")

    @classmethod
    def from_csv(cls, path) -> "ExecutionTrace":
        """Read a trace previously written by :meth:`to_csv`."""
        import pathlib

        trace = cls()
        lines = pathlib.Path(path).read_text().splitlines()
        for line in lines[1:]:
            if not line.strip():
                continue
            iteration, phase, sim = line.split(",", 2)
            trace.record(phase, float(sim), int(iteration))
        return trace
