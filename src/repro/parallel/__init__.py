"""Simulated shared-memory machine: spec, cost accounting, traces."""

from .costmodel import CostCounter, parallel_time, simulated_time
from .executor import ParallelRegion, WorkSpanExecutor, static_chunk_makespan
from .machine import MachineSpec, laptop_4core, xeon_40core
from .trace import ExecutionTrace, PhaseRecord

__all__ = [
    "MachineSpec",
    "xeon_40core",
    "laptop_4core",
    "CostCounter",
    "ParallelRegion",
    "WorkSpanExecutor",
    "static_chunk_makespan",
    "simulated_time",
    "parallel_time",
    "ExecutionTrace",
    "PhaseRecord",
]
