"""Modeled per-iteration serial costs for every training method.

Figure 2's wall-clock comparison is faithful to *what actually ran*, but
at 1-3k-vertex scale the work ratios that drive the paper's serial
speedups (the paper's Reddit: 153k training vertices vs 8000-vertex
subgraphs, a 19x propagation ratio) shrink to ~4x, and constant Python
overheads blur the rest. This module prices each method's iteration on
the *same* machine cost model used everywhere else, so the Figure 2
harness can report a scale-faithful modeled speedup next to the measured
wall-clock one:

* proposed — the trainer's own metered simulated time (already exact);
* Batched GCN — full-training-graph propagation + GEMM per update;
* GraphSAGE — measured sampled-support sizes priced on aggregation +
  weight flops + gather traffic (same pricing as Table II).
"""

from __future__ import annotations

import numpy as np

from ..analysis.speedup import gemm_simulated_time
from ..baselines.batched_gcn import BatchedGCNTrainer
from ..baselines.graphsage import GraphSAGETrainer
from ..graphs.csr import CSRGraph
from ..parallel.machine import MachineSpec

__all__ = [
    "gcn_iteration_cost",
    "batched_gcn_iteration_cost",
    "graphsage_iteration_cost",
]


def gcn_iteration_cost(
    graph: CSRGraph,
    *,
    feature_dims: list[int],
    num_classes: int,
    machine: MachineSpec,
) -> float:
    """Serial cost of one fwd+bwd GCN pass over ``graph``.

    ``feature_dims`` are the per-layer input dims (layer l consumes
    ``feature_dims[l]``); concat layers should pass the concatenated
    size for the next layer, as :func:`layer_dims_of` produces.
    """
    n = graph.num_vertices
    d = graph.average_degree
    cost = 0.0
    dim = feature_dims[0]
    for layer_out in feature_dims[1:]:
        # Aggregation fwd+bwd: 2 passes of n*d*dim gather-adds plus the
        # streamed bytes of the Eq. 3 communication model (index stream +
        # one cache-blocked feature read per round).
        comm_bytes = 2.0 * n * d + 8.0 * n * dim
        cost += 2.0 * (
            n * d * dim * machine.cost_gather
            + comm_bytes * machine.dram_cost_per_byte
        )
        # Weight application: W_self + W_neigh, each fwd + dW + dX; the
        # per-branch output is half the (concatenated) layer output.
        per_branch = layer_out // 2 if layer_out % 2 == 0 else layer_out
        flops = 3.0 * 2.0 * 2.0 * n * dim * per_branch
        cost += gemm_simulated_time(flops, machine, cores=1)
        dim = layer_out
    # Classifier head.
    cost += gemm_simulated_time(
        3.0 * 2.0 * n * dim * num_classes, machine, cores=1
    )
    return cost


def layer_dims_of(in_dim: int, hidden_dims: tuple[int, ...], concat: bool = True) -> list[int]:
    """Per-layer input dims of the shared GCN architecture."""
    dims = [in_dim]
    for h in hidden_dims:
        dims.append(2 * h if concat else h)
    return dims


def batched_gcn_iteration_cost(
    trainer: BatchedGCNTrainer, machine: MachineSpec
) -> float:
    """One Batched-GCN update: a full-training-graph fwd+bwd pass."""
    cfg = trainer.config
    dims = layer_dims_of(
        trainer.dataset.features.shape[1], cfg.hidden_dims, cfg.concat
    )
    return gcn_iteration_cost(
        trainer.train_graph,
        feature_dims=dims,
        num_classes=trainer.dataset.num_classes,
        machine=machine,
    )


def graphsage_iteration_cost(
    trainer: GraphSAGETrainer, machine: MachineSpec
) -> float:
    """Mean measured per-iteration GraphSAGE cost (requires recorded
    support stats from at least one training iteration)."""
    nodes = trainer.support_stats.nodes_per_layer
    edges = trainer.support_stats.edges_per_layer
    if not nodes:
        raise ValueError("no recorded support stats; train at least one iteration")
    in_dims = []
    dim = trainer.model.in_dim
    for layer in trainer.model.layers:
        in_dims.append(dim)
        dim = layer.output_dim
    costs = []
    for node_row, edge_row in zip(nodes, edges):
        cost = 0.0
        for l, (e_l, f_in) in enumerate(zip(edge_row, in_dims)):
            dst = node_row[l + 1]
            f_out = trainer.model.layers[l].out_dim
            cost += 2.0 * e_l * f_in * machine.cost_gather  # agg fwd+bwd
            cost += e_l * f_in * 8.0 * machine.dram_cost_per_byte
            cost += gemm_simulated_time(
                3.0 * 2.0 * 2.0 * dst * f_in * f_out, machine, cores=1
            )
        cost += gemm_simulated_time(
            3.0 * 2.0 * node_row[-1] * dim * trainer.model.num_classes,
            machine,
            cores=1,
        )
        costs.append(cost)
    return float(np.mean(costs))
