"""Ablation experiments (design choices DESIGN.md calls out).

* X1 — feature-only partitioning (Theorem 2): modeled ``g_comm`` of the
  paper's P=1 plan vs the brute-force optimum with an *ideal* partitioner
  (``gamma_P = 1/P``) and vs a realistic random partitioner. The paper
  proves the ratio to the ideal optimum is <= 2 under its preconditions.
* X1b — measured ``gamma_P`` of real partitioners (random / BFS /
  greedy-LDG) on an actual frontier-sampled subgraph.
* X2 — Dashboard enlargement factor ``eta``: probe cost vs cleanup cost
  trade-off, measured on real sampler runs and compared to Eq. 2.
* X3 — degree cap on skewed graphs: subgraph overlap / hub concentration /
  vertex coverage with and without the paper's cap of 30 entries.
* X4 — sampler comparison (the paper's future-work section): frontier
  sampling vs six alternative samplers on connectivity preservation and
  downstream GCN accuracy.
* X8 — alias tables vs the Dashboard on dynamic degree distributions
  (Section IV-A's rejected alternative, quantified).

(X6/X7 live in :mod:`repro.experiments.extensions`.)
"""

from __future__ import annotations

import numpy as np

from ..graphs.datasets import make_dataset
from ..graphs.stats import connectivity_summary, degree_ks_distance
from ..parallel.machine import xeon_40core
from ..propagation.partition_model import (
    brute_force_optimum,
    gamma_random_partition,
    gcomm_lower_bound,
    theorem2_conditions_hold,
    theorem2_plan,
)
from ..sampling.cost import sampler_cost_eq2, simulated_sampler_time
from ..sampling.dashboard import DashboardFrontierSampler
from ..sampling.extra import (
    ForestFireSampler,
    MetropolisHastingsWalkSampler,
    RandomEdgeSampler,
    RandomNodeSampler,
    RandomWalkSampler,
    SnowballSampler,
)
from ..train.config import TrainConfig
from ..train.trainer import GraphSamplingTrainer
from .common import EXPERIMENT_SCALES, format_table

__all__ = [
    "run_partitioning",
    "run_partitioner_gamma",
    "run_dashboard_eta",
    "run_alias_contrast",
    "run_degree_cap",
    "run_sampler_comparison",
]


# ----------------------------------------------------------------------
# X1 — partitioning
# ----------------------------------------------------------------------
def run_partitioning(
    *,
    sizes: tuple[int, ...] = (1000, 2000, 4000, 8000),
    feature_dims: tuple[int, ...] = (128, 512, 1024),
    d: float = 15.0,
    cores: int = 40,
    cache_bytes: int = 256 * 1024,
    seed: int = 0,
) -> dict[str, object]:
    """X1: modeled g_comm of the P=1 plan vs brute-force optima."""
    rng = np.random.default_rng(seed)
    rows = []
    for n in sizes:
        degrees = np.full(n, d)
        for f in feature_dims:
            ours = theorem2_plan(n=n, d=d, f=f, cores=cores, cache_bytes=cache_bytes)
            ideal = brute_force_optimum(
                n=n, d=d, f=f, cores=cores, cache_bytes=cache_bytes
            )
            realistic = brute_force_optimum(
                n=n,
                d=d,
                f=f,
                cores=cores,
                cache_bytes=cache_bytes,
                gamma_fn=lambda p: gamma_random_partition(p, degrees),
            )
            rows.append(
                {
                    "n": n,
                    "f": f,
                    "Q_ours": ours.q,
                    "gcomm_ours_MB": ours.comm_bytes / 2**20,
                    "gcomm_ideal_MB": ideal.comm_bytes / 2**20,
                    "gcomm_random_MB": realistic.comm_bytes / 2**20,
                    "ratio_vs_ideal": ours.comm_bytes / ideal.comm_bytes,
                    "ratio_vs_lb": ours.comm_bytes / gcomm_lower_bound(n, f),
                    "thm2_conditions": theorem2_conditions_hold(
                        n=n, d=d, f=f, cores=cores, cache_bytes=cache_bytes
                    ),
                }
            )
    return {"rows": rows}


# ----------------------------------------------------------------------
# X1b — measured gamma_P of real partitioners on sampled subgraphs
# ----------------------------------------------------------------------
def run_partitioner_gamma(
    *,
    dataset: str = "reddit",
    parts_list: tuple[int, ...] = (2, 4, 8),
    seed: int = 0,
) -> dict[str, object]:
    """Measure source-set expansion of actual partitioners on an actual
    frontier-sampled subgraph — the concrete version of Theorem 2's
    "gamma_P stays near 1" argument.
    """
    from ..graphs.partition import (
        bfs_partition,
        greedy_edge_partition,
        random_partition,
    )
    from ..propagation.partition_model import gamma_of_partition

    ds = make_dataset(dataset, scale=EXPERIMENT_SCALES[dataset], seed=seed)
    n = ds.graph.num_vertices
    budget = max(min(n // 4, 1200), 64)
    # engine="reference" in the ablations: the committed modeled-cost
    # tables were produced with the scalar oracle's RNG stream.
    sampler = DashboardFrontierSampler(
        ds.graph,
        frontier_size=max(budget // 6, 16),
        budget=budget,
        engine="reference",
    )
    sub = sampler.sample(np.random.default_rng(seed)).graph
    rng = np.random.default_rng(seed + 1)
    rows = []
    for parts in parts_list:
        row: dict[str, object] = {"parts": parts, "gamma_lower_bound": 1.0 / parts}
        for name, fn in (
            ("random", random_partition),
            ("bfs", bfs_partition),
            ("greedy", greedy_edge_partition),
        ):
            row[f"gamma_{name}"] = gamma_of_partition(sub, fn(sub, parts, rng=rng))
        rows.append(row)
    return {"rows": rows, "subgraph": sub}


# ----------------------------------------------------------------------
# X2 — Dashboard eta sweep
# ----------------------------------------------------------------------
def run_dashboard_eta(
    *,
    dataset: str = "ppi",
    etas: tuple[float, ...] = (1.25, 1.5, 2.0, 3.0, 4.0),
    num_subgraphs: int = 5,
    seed: int = 0,
) -> dict[str, object]:
    """X2: measured probe/cleanup trade-off across eta values."""
    ds = make_dataset(dataset, scale=EXPERIMENT_SCALES[dataset], seed=seed)
    machine = xeon_40core()
    n = ds.graph.num_vertices
    budget = max(min(n // 4, 1200), 64)
    m = max(budget // 6, 16)
    rows = []
    for eta in etas:
        sampler = DashboardFrontierSampler(
            ds.graph, frontier_size=m, budget=budget, eta=eta, engine="reference"
        )
        rng = np.random.default_rng(seed)
        agg = {"probes": 0.0, "pops": 0.0, "cleanups": 0.0, "time": 0.0, "bytes": 0.0}
        for _ in range(num_subgraphs):
            stats = sampler.sample(rng).stats
            agg["probes"] += stats["probes"]
            agg["pops"] += stats["pops"]
            agg["cleanups"] += stats["cleanups"]
            agg["bytes"] += stats["modeled_bytes"]
            agg["time"] += simulated_sampler_time(stats, machine, p_intra=1)
        rows.append(
            {
                "eta": eta,
                "probes_per_pop": agg["probes"] / agg["pops"],
                "cleanups_per_subgraph": agg["cleanups"] / num_subgraphs,
                "sim_time_per_subgraph": agg["time"] / num_subgraphs,
                "eq2_predicted": sampler_cost_eq2(
                    n=budget, m=m, d=ds.graph.average_degree, eta=eta, p=1
                ),
                "dashboard_KB": agg["bytes"] / num_subgraphs / 1024,
            }
        )
    return {"rows": rows}


# ----------------------------------------------------------------------
# X8 — alias tables vs Dashboard for dynamic distributions
# ----------------------------------------------------------------------
def run_alias_contrast(
    *,
    frontier_sizes: tuple[int, ...] = (50, 200, 1000, 4000),
    avg_degree: float = 30.0,
    eta: float = 2.0,
) -> dict[str, object]:
    """Section IV-A's claim, quantified: alias tables sample in O(1) but
    cannot absorb the frontier's single-vertex updates, so the pop-replace
    loop pays an O(m) rebuild per pop; the Dashboard's incremental update
    wins increasingly with frontier size."""
    from ..sampling.alias import dynamic_sampling_cost

    rows = []
    for m in frontier_sizes:
        pops = 7 * m  # the paper's n = 8m shape (n - m pops)
        cost = dynamic_sampling_cost(m=m, pops=pops, avg_degree=avg_degree, eta=eta)
        rows.append(
            {
                "frontier_m": m,
                "pops": pops,
                "alias_ops": cost["alias_ops"],
                "dashboard_ops": cost["dashboard_ops"],
                "dashboard_advantage": cost["dashboard_advantage"],
            }
        )
    return {"rows": rows}


# ----------------------------------------------------------------------
# X3 — degree cap
# ----------------------------------------------------------------------
def _pairwise_jaccard(sets: list[np.ndarray]) -> float:
    vals = []
    for i in range(len(sets)):
        for j in range(i + 1, len(sets)):
            inter = np.intersect1d(sets[i], sets[j]).size
            union = np.union1d(sets[i], sets[j]).size
            vals.append(inter / union if union else 0.0)
    return float(np.mean(vals)) if vals else 0.0


def run_degree_cap(
    *,
    dataset: str = "amazon",
    cap: int = 30,
    num_subgraphs: int = 8,
    seed: int = 0,
) -> dict[str, object]:
    """X3: subgraph overlap/coverage with and without the degree cap."""
    ds = make_dataset(dataset, scale=EXPERIMENT_SCALES[dataset], seed=seed)
    graph = ds.graph
    n = graph.num_vertices
    budget = max(min(n // 4, 1200), 64)
    m = max(budget // 6, 16)
    hubs = np.argsort(graph.degrees)[-max(n // 100, 5) :]
    rows = []
    for cap_value in (None, cap):
        sampler = DashboardFrontierSampler(
            graph,
            frontier_size=m,
            budget=budget,
            eta=2.0,
            max_entries_per_vertex=cap_value,
            engine="reference",
        )
        rng = np.random.default_rng(seed)
        vertex_sets = [sampler.sample(rng).vertex_map for _ in range(num_subgraphs)]
        covered = np.unique(np.concatenate(vertex_sets)).size
        hub_hits = float(
            np.mean([np.isin(hubs, vs).mean() for vs in vertex_sets])
        )
        rows.append(
            {
                "cap": "none" if cap_value is None else cap_value,
                "mean_pairwise_jaccard": _pairwise_jaccard(vertex_sets),
                "hub_inclusion_rate": hub_hits,
                "vertex_coverage": covered / n,
            }
        )
    return {"rows": rows}


# ----------------------------------------------------------------------
# X4 — sampler comparison
# ----------------------------------------------------------------------
def run_sampler_comparison(
    *,
    dataset: str = "ppi",
    epochs: int = 10,
    seed: int = 0,
) -> dict[str, object]:
    """X4: frontier vs alternative samplers, connectivity + accuracy."""
    ds = make_dataset(dataset, scale=EXPERIMENT_SCALES[dataset], seed=seed)
    n_train_graph_budget = None  # computed per sampler below
    base_summary = connectivity_summary(ds.graph)

    cfg = TrainConfig(
        hidden_dims=(64, 64),
        frontier_size=32,
        budget=256,
        lr=0.005,
        epochs=epochs,
        eval_every=epochs,  # evaluate once at the end
        seed=seed,
    )
    # Build a reference trainer to obtain the (patched) training graph all
    # samplers share.
    ref = GraphSamplingTrainer(ds, cfg)
    g = ref.train_graph
    budget = min(cfg.budget, g.num_vertices)
    samplers = {
        "frontier": DashboardFrontierSampler(
            g,
            frontier_size=min(cfg.frontier_size, budget),
            budget=budget,
            eta=cfg.eta,
            engine="reference",
        ),
        "random_node": RandomNodeSampler(g, budget=budget),
        "random_edge": RandomEdgeSampler(g, budget=budget),
        "random_walk": RandomWalkSampler(
            g, num_roots=max(budget // 8, 4), walk_length=7
        ),
        "mh_walk": MetropolisHastingsWalkSampler(
            g, num_roots=max(budget // 8, 4), walk_length=7
        ),
        "forest_fire": ForestFireSampler(g, budget=budget),
        "snowball": SnowballSampler(g, budget=budget),
    }
    rows = []
    for name, sampler in samplers.items():
        rng = np.random.default_rng(seed)
        sub = sampler.sample(rng)
        summary = connectivity_summary(sub.graph)
        trainer = GraphSamplingTrainer(ds, cfg, sampler=sampler)
        result = trainer.train()
        rows.append(
            {
                "sampler": name,
                "subgraph_vertices": summary["num_vertices"],
                "subgraph_avg_degree": summary["avg_degree"],
                "degree_ks_vs_full": degree_ks_distance(ds.graph, sub.graph),
                "clustering_gap": abs(
                    summary["global_clustering"] - base_summary["global_clustering"]
                ),
                "largest_cc_frac": summary["largest_component_fraction"],
                "val_f1_micro": result.final_val_f1,
            }
        )
    return {"rows": rows, "full_graph": base_summary}


def format_results(results: dict[str, object], title: str) -> str:
    return format_table(results["rows"], title=title)  # type: ignore[arg-type]


if __name__ == "__main__":  # pragma: no cover
    print(format_results(run_partitioning(), "X1: partitioning"))
    print()
    print(format_results(run_dashboard_eta(), "X2: dashboard eta"))
    print()
    print(format_results(run_degree_cap(), "X3: degree cap"))
    print()
    print(format_results(run_sampler_comparison(epochs=5), "X4: samplers"))
