"""Experiment S1 — serving-path comparison (naive vs batched vs ANN).

Replays one Zipf-skewed query trace (skew mirroring the Amazon profile's
degree distribution) through four server configurations and reports the
paper-style table the ROADMAP's serving goal asks for: throughput,
latency percentiles, cache hit-rate, shed count and recall@k.

Configurations, cumulative:

* ``naive``              — one brute-force scan per request, no queueing
  amortization (the pre-PR ``cosine_nearest_neighbors`` serving story);
* ``batched``            — micro-batched brute force (one GEMM per batch);
* ``batched+cache``      — plus the LRU result cache;
* ``batched+cache+ann``  — plus the cluster-pruned index with deadline
  degradation.

The trace's offered rate is calibrated to a multiple of the measured
naive capacity so every configuration runs saturated: throughput then
measures service capacity, and the shed counter shows what overload
costs. Service times are measured around the real kernels; queue
dynamics run on the virtual replay clock.
"""

from __future__ import annotations

import time

import numpy as np

from ..serving.index import BruteForceIndex, recall_at_k
from ..serving.server import EmbeddingServer, ServerConfig
from ..serving.workload import zipf_trace
from .common import format_table

__all__ = ["mixture_embeddings", "run", "format_results", "CONFIG_NAMES"]

CONFIG_NAMES = ("naive", "batched", "batched+cache", "batched+cache+ann")


def mixture_embeddings(
    num_vertices: int,
    dim: int,
    *,
    num_components: int = 64,
    spread: float = 0.2,
    seed: int = 0,
) -> np.ndarray:
    """Gaussian-mixture embedding matrix standing in for a trained model.

    Trained graph embeddings are clustered by construction (label
    homogeneity is the quality metric in :mod:`repro.train.embedding`);
    a mixture with per-component spread reproduces that geometry without
    paying for a training run. For the real pipeline end-to-end, see
    ``examples/serving_demo.py``.
    """
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_components, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    which = rng.integers(0, num_components, size=num_vertices)
    return centers[which] + spread * rng.standard_normal((num_vertices, dim))


def _calibrate_naive_qps(embeddings: np.ndarray, k: int, samples: int = 64) -> float:
    """Measured single-request brute-force rate (requests/second)."""
    index = BruteForceIndex(embeddings)
    rng = np.random.default_rng(0)
    qids = rng.integers(0, embeddings.shape[0], size=samples)
    index.search_ids(qids[:4], k)  # warm the kernels
    t0 = time.perf_counter()
    for q in qids:
        index.search_ids(np.array([q]), k)
    elapsed = time.perf_counter() - t0
    return samples / max(elapsed, 1e-9)


def run(
    *,
    num_queries: int = 3000,
    num_vertices: int = 12000,
    dim: int = 64,
    num_clusters: int = 64,
    probes: int = 8,
    skew: float = 1.1,
    k: int = 10,
    max_batch: int = 64,
    queue_capacity: int = 128,
    cache_capacity: int = 2048,
    load_factor: float = 20.0,
    seed: int = 0,
) -> dict:
    """Run the four-configuration serving comparison; return plain rows."""
    emb = mixture_embeddings(
        num_vertices, dim, num_components=num_clusters, seed=seed
    )
    naive_qps = _calibrate_naive_qps(emb, k)
    rate = load_factor * naive_qps
    trace = zipf_trace(
        num_queries,
        num_vertices,
        skew=skew,
        rate=rate,
        k=k,
        rng=np.random.default_rng(seed + 1),
    )
    # Exact answers for every request in the trace, for recall scoring.
    exact_idx, _ = BruteForceIndex(emb).search_ids(trace.query_ids, k)

    batch_wait = 2.0 * max_batch / rate
    deadline = 8.0 * max_batch / naive_qps
    configs: list[tuple[str, ServerConfig, str, dict]] = [
        (
            "naive",
            ServerConfig(max_batch=1, queue_capacity=queue_capacity),
            "brute",
            {},
        ),
        (
            "batched",
            ServerConfig(
                max_batch=max_batch,
                max_wait=batch_wait,
                queue_capacity=queue_capacity,
            ),
            "brute",
            {},
        ),
        (
            "batched+cache",
            ServerConfig(
                max_batch=max_batch,
                max_wait=batch_wait,
                queue_capacity=queue_capacity,
                cache_capacity=cache_capacity,
            ),
            "brute",
            {},
        ),
        (
            "batched+cache+ann",
            ServerConfig(
                max_batch=max_batch,
                max_wait=batch_wait,
                queue_capacity=queue_capacity,
                cache_capacity=cache_capacity,
                deadline=deadline,
                min_probes=max(2, probes // 4),
            ),
            "cluster",
            {
                "num_clusters": num_clusters,
                "probes": probes,
                "rng": np.random.default_rng(seed + 2),
            },
        ),
    ]
    rows = []
    latency_samples: dict[str, list[float]] = {}
    for name, cfg, kind, kwargs in configs:
        server = EmbeddingServer(
            emb, config=cfg, index=kind, index_kwargs=kwargs
        )
        replay = server.serve_trace(trace, collect_results=True)
        m = replay.metrics
        latency_samples[name] = [float(v) for v in m.latency.samples]
        served_seqs = sorted(replay.results)
        m.recall_at_k = recall_at_k(
            np.array([replay.results[s] for s in served_seqs]),
            exact_idx[served_seqs],
        )
        row = {"config": name, **m.as_dict()}
        rows.append(row)
    base = rows[0]["throughput_qps"]
    for row in rows:
        row["speedup_vs_naive"] = row["throughput_qps"] / base if base else 0.0
    return {
        "rows": rows,
        # Raw per-request latencies per configuration: what bench-record
        # appends to the history store and bench-gate tests against.
        "latency_samples": latency_samples,
        "meta": {
            "num_vertices": num_vertices,
            "dim": dim,
            "num_queries": num_queries,
            "num_clusters": num_clusters,
            "probes": probes,
            "zipf_skew": skew,
            "k": k,
            "naive_qps_calibrated": naive_qps,
            "offered_rate_qps": rate,
            "load_factor": load_factor,
            "seed": seed,
        },
    }


_COLUMNS = [
    "config",
    "served",
    "shed",
    "throughput_qps",
    "speedup_vs_naive",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "hit_rate",
    "recall_at_k",
    "degraded_batches",
]


def format_results(results: dict) -> str:
    """Render the comparison as the paper-style fixed-width table."""
    meta = results["meta"]
    title = (
        "S1: embedding serving under a Zipf(%.2f) trace — "
        "n=%d, d=%d, k=%d, offered %.0f qps (%.0fx naive capacity)"
        % (
            meta["zipf_skew"],
            meta["num_vertices"],
            meta["dim"],
            meta["k"],
            meta["offered_rate_qps"],
            meta["load_factor"],
        )
    )
    return format_table(results["rows"], columns=_COLUMNS, title=title)
