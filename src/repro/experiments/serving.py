"""Experiment S1 — serving-path comparison (naive vs batched vs ANN).

Replays one Zipf-skewed query trace (skew mirroring the Amazon profile's
degree distribution) through four server configurations and reports the
paper-style table the ROADMAP's serving goal asks for: throughput,
latency percentiles, cache hit-rate, shed count and recall@k.

Configurations, cumulative:

* ``naive``              — one brute-force scan per request, no queueing
  amortization (the pre-PR ``cosine_nearest_neighbors`` serving story);
* ``batched``            — micro-batched brute force (one GEMM per batch);
* ``batched+cache``      — plus the LRU result cache;
* ``batched+cache+ann``  — plus the cluster-pruned index with deadline
  degradation.

The trace's offered rate is calibrated to a multiple of the measured
naive capacity so every configuration runs saturated: throughput then
measures service capacity, and the shed counter shows what overload
costs. Service times are measured around the real kernels; queue
dynamics run on the virtual replay clock.
"""

from __future__ import annotations

import time

import numpy as np

from .. import obs
from ..obs.export import trace_document
from ..obs.slo import SLOContext, cluster_rules, evaluate
from ..serving.cluster import ClusterConfig, ClusterServer
from ..serving.index import BruteForceIndex, recall_at_k
from ..serving.server import EmbeddingServer, ServerConfig
from ..serving.upsert import SlabUpsertProducer
from ..serving.workload import bursty_trace, zipf_trace
from .common import format_table

__all__ = [
    "mixture_embeddings",
    "run",
    "format_results",
    "CONFIG_NAMES",
    "run_cluster",
    "format_cluster_results",
    "CLUSTER_PHASES",
]

CONFIG_NAMES = ("naive", "batched", "batched+cache", "batched+cache+ann")

CLUSTER_PHASES = ("zipf-throughput", "bursty-hedging", "upsert-soak")


def mixture_embeddings(
    num_vertices: int,
    dim: int,
    *,
    num_components: int = 64,
    spread: float = 0.2,
    seed: int = 0,
) -> np.ndarray:
    """Gaussian-mixture embedding matrix standing in for a trained model.

    Trained graph embeddings are clustered by construction (label
    homogeneity is the quality metric in :mod:`repro.train.embedding`);
    a mixture with per-component spread reproduces that geometry without
    paying for a training run. For the real pipeline end-to-end, see
    ``examples/serving_demo.py``.
    """
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_components, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    which = rng.integers(0, num_components, size=num_vertices)
    return centers[which] + spread * rng.standard_normal((num_vertices, dim))


def _calibrate_naive_qps(embeddings: np.ndarray, k: int, samples: int = 64) -> float:
    """Measured single-request brute-force rate (requests/second)."""
    index = BruteForceIndex(embeddings)
    rng = np.random.default_rng(0)
    qids = rng.integers(0, embeddings.shape[0], size=samples)
    index.search_ids(qids[:4], k)  # warm the kernels
    t0 = time.perf_counter()
    for q in qids:
        index.search_ids(np.array([q]), k)
    elapsed = time.perf_counter() - t0
    return samples / max(elapsed, 1e-9)


def run(
    *,
    num_queries: int = 3000,
    num_vertices: int = 12000,
    dim: int = 64,
    num_clusters: int = 64,
    probes: int = 8,
    skew: float = 1.1,
    k: int = 10,
    max_batch: int = 64,
    queue_capacity: int = 128,
    cache_capacity: int = 2048,
    load_factor: float = 20.0,
    seed: int = 0,
) -> dict:
    """Run the four-configuration serving comparison; return plain rows."""
    emb = mixture_embeddings(
        num_vertices, dim, num_components=num_clusters, seed=seed
    )
    naive_qps = _calibrate_naive_qps(emb, k)
    rate = load_factor * naive_qps
    trace = zipf_trace(
        num_queries,
        num_vertices,
        skew=skew,
        rate=rate,
        k=k,
        rng=np.random.default_rng(seed + 1),
    )
    # Exact answers for every request in the trace, for recall scoring.
    exact_idx, _ = BruteForceIndex(emb).search_ids(trace.query_ids, k)

    batch_wait = 2.0 * max_batch / rate
    deadline = 8.0 * max_batch / naive_qps
    configs: list[tuple[str, ServerConfig, str, dict]] = [
        (
            "naive",
            ServerConfig(max_batch=1, queue_capacity=queue_capacity),
            "brute",
            {},
        ),
        (
            "batched",
            ServerConfig(
                max_batch=max_batch,
                max_wait=batch_wait,
                queue_capacity=queue_capacity,
            ),
            "brute",
            {},
        ),
        (
            "batched+cache",
            ServerConfig(
                max_batch=max_batch,
                max_wait=batch_wait,
                queue_capacity=queue_capacity,
                cache_capacity=cache_capacity,
            ),
            "brute",
            {},
        ),
        (
            "batched+cache+ann",
            ServerConfig(
                max_batch=max_batch,
                max_wait=batch_wait,
                queue_capacity=queue_capacity,
                cache_capacity=cache_capacity,
                deadline=deadline,
                min_probes=max(2, probes // 4),
            ),
            "cluster",
            {
                "num_clusters": num_clusters,
                "probes": probes,
                "rng": np.random.default_rng(seed + 2),
            },
        ),
    ]
    rows = []
    latency_samples: dict[str, list[float]] = {}
    for name, cfg, kind, kwargs in configs:
        server = EmbeddingServer(
            emb, config=cfg, index=kind, index_kwargs=kwargs
        )
        replay = server.serve_trace(trace, collect_results=True)
        m = replay.metrics
        latency_samples[name] = [float(v) for v in m.latency.samples]
        served_seqs = sorted(replay.results)
        m.recall_at_k = recall_at_k(
            np.array([replay.results[s] for s in served_seqs]),
            exact_idx[served_seqs],
        )
        row = {"config": name, **m.as_dict()}
        rows.append(row)
    base = rows[0]["throughput_qps"]
    for row in rows:
        row["speedup_vs_naive"] = row["throughput_qps"] / base if base else 0.0
    return {
        "rows": rows,
        # Raw per-request latencies per configuration: what bench-record
        # appends to the history store and bench-gate tests against.
        "latency_samples": latency_samples,
        "meta": {
            "num_vertices": num_vertices,
            "dim": dim,
            "num_queries": num_queries,
            "num_clusters": num_clusters,
            "probes": probes,
            "zipf_skew": skew,
            "k": k,
            "naive_qps_calibrated": naive_qps,
            "offered_rate_qps": rate,
            "load_factor": load_factor,
            "seed": seed,
        },
    }


_COLUMNS = [
    "config",
    "served",
    "shed",
    "throughput_qps",
    "speedup_vs_naive",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "hit_rate",
    "recall_at_k",
    "degraded_batches",
]


def format_results(results: dict) -> str:
    """Render the comparison as the paper-style fixed-width table."""
    meta = results["meta"]
    title = (
        "S1: embedding serving under a Zipf(%.2f) trace — "
        "n=%d, d=%d, k=%d, offered %.0f qps (%.0fx naive capacity)"
        % (
            meta["zipf_skew"],
            meta["num_vertices"],
            meta["dim"],
            meta["k"],
            meta["offered_rate_qps"],
            meta["load_factor"],
        )
    )
    return format_table(results["rows"], columns=_COLUMNS, title=title)


# ----------------------------------------------------------------------
# Experiment S2 — the sharded, replicated cluster (serve-bench --cluster).

def _calibrate_batched_qps(
    embeddings: np.ndarray, k: int, batch: int, dtype=np.float32
) -> float:
    """Measured batched brute-force rate (queries/second) at ``batch``.

    The first full-batch scan pays one-off allocation/cache-warming
    costs an order of magnitude above steady state, so it is discarded
    and the median of three warm runs is used.
    """
    index = BruteForceIndex(embeddings, dtype=dtype)
    rng = np.random.default_rng(0)
    qids = rng.integers(0, embeddings.shape[0], size=batch)
    index.search_ids(qids, k)  # warm the full-batch path
    times = []
    for _ in range(3):
        t0 = time.perf_counter()
        index.search_ids(qids, k)
        times.append(time.perf_counter() - t0)
    return batch / max(float(np.median(times)), 1e-9)


def _cluster_row(phase: str, config: str, replay) -> dict:
    """Flatten one cluster replay into a report row."""
    row = {"phase": phase, "config": config, **replay.metrics.as_dict()}
    stats = getattr(replay, "stats", None)
    if stats:
        row["mean_fanout"] = stats.get("mean_fanout", 0.0)
        row["hedges"] = stats.get("hedges", 0.0)
        row["hedge_wins"] = stats.get("hedge_wins", 0.0)
        row["upserts"] = stats.get("upserts_applied", 0.0)
        row["max_staleness_ms"] = stats.get("max_staleness_s", 0.0) * 1e3
    return row


def _straggler_model(replicas: int, *, slow_factor: float = 12.0):
    """Deterministic service model with one slow replica per shard.

    The last replica of every shard pays ``slow_factor``x the nominal
    row-scan cost — the tail-at-scale scenario hedged requests exist
    for. Deterministic, so the hedged-vs-unhedged p99 comparison is
    exactly reproducible.
    """

    def model(shard: int, replica: int, batch: int, rows: int) -> float:
        base = 8e-4 + 2e-8 * rows
        return base * (slow_factor if replica == replicas - 1 else 1.0)

    return model


def run_cluster(
    *,
    num_queries: int = 2000,
    num_vertices: int = 1_000_000,
    dim: int = 32,
    num_shards: int = 4,
    replicas: int = 2,
    fanout: int = 2,
    skew: float = 1.1,
    k: int = 10,
    max_batch: int = 64,
    queue_capacity: int = 512,
    cache_capacity: int = 4096,
    load_factor: float = 8.0,
    soak_vertices: int = 50_000,
    seed: int = 0,
) -> dict:
    """Run the three-phase cluster experiment; return plain rows.

    Phases (see :data:`CLUSTER_PHASES`):

    1. **zipf-throughput** — the million-vertex Zipf trace through the
       single batched brute-force server and through the sharded
       cluster, with *measured* service times. The baseline's exact
       results double as the recall oracle for the cluster's pruned
       (fanout < shards) answers.
    2. **bursty-hedging** — a bursty trace against a deterministic
       straggler service model (one slow replica per shard), hedging
       off vs on: hedged requests must lower p99.
    3. **upsert-soak** — a steady trace with the streaming slab
       producer refreshing every shard mid-flight, run under the obs
       layer; the ``cluster_rules`` SLOs (worst per-shard p99,
       staleness bound) are evaluated against the live registry.
    """
    rows: list[dict] = []
    latency_samples: dict[str, list[float]] = {}
    dtype = np.float32

    # ---- phase 1: million-vertex Zipf throughput + recall -----------
    emb = mixture_embeddings(
        num_vertices, dim, num_components=max(64, 16 * num_shards), seed=seed
    )
    single_qps = _calibrate_batched_qps(emb, k, max_batch, dtype=dtype)
    rate = load_factor * single_qps
    trace = zipf_trace(
        num_queries,
        num_vertices,
        skew=skew,
        rate=rate,
        k=k,
        rng=np.random.default_rng(seed + 1),
    )
    batch_wait = 2.0 * max_batch / rate
    single = EmbeddingServer(
        emb,
        config=ServerConfig(
            max_batch=max_batch,
            max_wait=batch_wait,
            queue_capacity=queue_capacity,
            cache_capacity=cache_capacity,
        ),
        index="brute",
        index_kwargs={"dtype": dtype},
    )
    base_replay = single.serve_trace(trace, collect_results=True)
    latency_samples["single"] = [
        float(v) for v in base_replay.metrics.latency.samples
    ]
    rows.append(
        {
            "phase": CLUSTER_PHASES[0],
            "config": "single-batched",
            **base_replay.metrics.as_dict(),
        }
    )

    cluster = ClusterServer(
        emb,
        config=ClusterConfig(
            num_shards=num_shards,
            replicas=replicas,
            fanout=fanout,
            max_batch=max_batch,
            max_wait=batch_wait,
            queue_capacity=queue_capacity,
            cache_capacity=cache_capacity,
        ),
        rng=np.random.default_rng(seed + 2),
        dtype=dtype,
    )
    cluster_replay = cluster.serve_trace(trace, collect_results=True)
    cluster_name = f"cluster-{num_shards}x{replicas}"
    latency_samples["cluster"] = [
        float(v) for v in cluster_replay.metrics.latency.samples
    ]
    # Recall oracle: the single brute-force server is exact, so score
    # the cluster's pruned answers against the requests both served.
    common = sorted(set(base_replay.results) & set(cluster_replay.results))
    recall = float("nan")
    if common:
        recall = recall_at_k(
            np.array([cluster_replay.results[s] for s in common]),
            np.array([base_replay.results[s] for s in common]),
        )
    cluster_replay.metrics.recall_at_k = recall
    rows.append(_cluster_row(CLUSTER_PHASES[0], cluster_name, cluster_replay))
    single_tp = base_replay.metrics.throughput
    speedup = (
        cluster_replay.metrics.throughput / single_tp if single_tp else 0.0
    )
    rows[-1]["speedup_vs_single"] = speedup

    # ---- phase 2: bursty trace, hedging off vs on -------------------
    emb2 = mixture_embeddings(
        soak_vertices, dim, num_components=max(64, 16 * num_shards), seed=seed + 10
    )
    btrace = bursty_trace(
        max(600, num_queries * 3 // 4),
        soak_vertices,
        skew=skew,
        base_rate=800.0,
        burst_rate=8000.0,
        base_seconds=0.5,
        burst_seconds=0.15,
        k=k,
        rng=np.random.default_rng(seed + 3),
    )
    straggler = _straggler_model(replicas)
    assignment = None
    hedge_results = {}
    for hedged in (False, True):
        cfg = ClusterConfig(
            num_shards=num_shards,
            replicas=replicas,
            fanout=fanout,
            max_batch=max_batch,
            queue_capacity=queue_capacity,
            hedge=hedged,
            hedge_percentile=95.0,
            hedge_min_samples=64,
            hedge_fallback=0.02,
        )
        server = ClusterServer(
            emb2,
            config=cfg,
            assignment=assignment,
            service_model=straggler,
            rng=np.random.default_rng(seed + 4),
            dtype=dtype,
        )
        if assignment is None:  # reuse the partition across both runs
            assignment = server.sharded.assignment
        if hedged:
            # The hedged replay runs under obs so its request span
            # forest (hedged duplicates, winner marked) and the tail
            # exemplars that point into it are captured into the
            # OBS_serve_cluster.json document the CLI writes — every
            # p99 exemplar must resolve to a full span tree there.
            with obs.enabled():
                obs.reset()
                replay = server.serve_trace(btrace)
                trace_doc = trace_document("serve_cluster_hedged")
        else:
            replay = server.serve_trace(btrace)
        name = "bursty+hedge" if hedged else "bursty-nohedge"
        hedge_results[hedged] = replay
        latency_samples[name] = [
            float(v) for v in replay.metrics.latency.samples
        ]
        rows.append(_cluster_row(CLUSTER_PHASES[1], name, replay))
    p99_nohedge = hedge_results[False].metrics.latency.percentile(99.0)
    p99_hedge = hedge_results[True].metrics.latency.percentile(99.0)

    # ---- phase 3: streaming upserts under the obs SLOs --------------
    strace = zipf_trace(
        max(600, num_queries // 2),
        soak_vertices,
        skew=skew,
        rate=3000.0,
        k=k,
        rng=np.random.default_rng(seed + 5),
    )
    span_est = strace.arrivals[-1] - strace.arrivals[0]
    upsert_rounds = 3
    interval = 0.8 * span_est / (upsert_rounds * num_shards)
    soak_model = _straggler_model(replicas, slow_factor=1.0)
    with obs.enabled():
        obs.reset()
        soak = ClusterServer(
            emb2,
            config=ClusterConfig(
                num_shards=num_shards,
                replicas=replicas,
                fanout=fanout,
                max_batch=max_batch,
                queue_capacity=queue_capacity,
                cache_capacity=cache_capacity,
            ),
            assignment=assignment,
            service_model=soak_model,
            rng=np.random.default_rng(seed + 6),
            dtype=dtype,
        )
        soak.upserts = SlabUpsertProducer(
            emb2,
            soak.sharded.assignment,
            start=float(strace.arrivals[0]),
            interval=float(interval),
            rounds=upsert_rounds,
            seed=seed + 7,
        )
        soak_replay = soak.serve_trace(strace)
        staleness_bound = 4.0 * num_shards * interval + 0.25
        slo_results = evaluate(
            cluster_rules(
                per_shard_p99=0.050, staleness_bound=float(staleness_bound)
            ),
            SLOContext(),
        )
    latency_samples["upsert-soak"] = [
        float(v) for v in soak_replay.metrics.latency.samples
    ]
    rows.append(_cluster_row(CLUSTER_PHASES[2], "upsert-soak", soak_replay))
    slo_rows = [r.as_row() for r in slo_results]

    return {
        "rows": rows,
        # Raw per-request latencies per configuration: what bench-record
        # appends to the history store and bench-gate tests against.
        "latency_samples": latency_samples,
        "slo": slo_rows,
        # Request span forest + tail exemplars of the hedged replay
        # (written to OBS_serve_cluster.json by serve-bench --cluster).
        "trace_doc": trace_doc,
        "meta": {
            "num_vertices": num_vertices,
            "soak_vertices": soak_vertices,
            "dim": dim,
            "num_queries": num_queries,
            "num_shards": num_shards,
            "replicas": replicas,
            "fanout": fanout,
            "zipf_skew": skew,
            "k": k,
            "single_qps_calibrated": single_qps,
            "offered_rate_qps": rate,
            "load_factor": load_factor,
            "seed": seed,
            # Acceptance-criteria summary (what the bench asserts on).
            "speedup_vs_single": speedup,
            "recall_at_k_cluster": recall,
            "p99_ms_nohedge": p99_nohedge * 1e3,
            "p99_ms_hedge": p99_hedge * 1e3,
            "hedges": hedge_results[True].stats.get("hedges", 0),
            "hedge_wins": hedge_results[True].stats.get("hedge_wins", 0),
            "upserts_applied": soak_replay.stats.get("upserts_applied", 0),
            "max_staleness_s": soak_replay.stats.get("max_staleness_s", 0.0),
            "staleness_bound_s": float(staleness_bound),
            "slo_ok": all(r["status"] == "ok" for r in slo_rows),
        },
    }


_CLUSTER_COLUMNS = [
    "phase",
    "config",
    "served",
    "shed",
    "throughput_qps",
    "speedup_vs_single",
    "p50_ms",
    "p99_ms",
    "hit_rate",
    "recall_at_k",
    "mean_fanout",
    "hedges",
    "hedge_wins",
    "upserts",
    "max_staleness_ms",
]

_SLO_COLUMNS = ["rule", "kind", "value", "threshold", "status", "detail"]


def format_cluster_results(results: dict) -> str:
    """Render the cluster experiment: phase table plus the SLO report."""
    meta = results["meta"]
    title = (
        "S2: sharded cluster serving — n=%d, d=%d, %d shards x %d replicas, "
        "fanout %d, offered %.0f qps (%.0fx single capacity)"
        % (
            meta["num_vertices"],
            meta["dim"],
            meta["num_shards"],
            meta["replicas"],
            meta["fanout"],
            meta["offered_rate_qps"],
            meta["load_factor"],
        )
    )
    table = format_table(results["rows"], columns=_CLUSTER_COLUMNS, title=title)
    slo = format_table(
        results["slo"], columns=_SLO_COLUMNS, title="cluster SLOs"
    )
    return table + "\n\n" + slo
