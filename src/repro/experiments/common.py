"""Shared experiment infrastructure: scales, formatting, defaults.

Every experiment module exposes ``run(...) -> dict`` returning plain data
(rows / series) plus a ``format_*`` helper that renders the same rows the
paper's table or figure reports. Benchmarks call ``run`` and print; tests
assert on the returned data.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Mapping

__all__ = [
    "EXPERIMENT_SCALES",
    "DATASET_NAMES",
    "format_table",
    "format_float",
    "to_jsonable",
    "write_bench_json",
]

# Default generation scales per dataset (fraction of published vertex
# count), chosen so each profile lands in the 1-4k vertex range where a
# pure-numpy run finishes in seconds while preserving the profiles'
# *relative* sizes and degree structure.
EXPERIMENT_SCALES: dict[str, float] = {
    "ppi": 0.08,
    "reddit": 0.010,
    "yelp": 0.004,
    "amazon": 0.002,
}

DATASET_NAMES = tuple(EXPERIMENT_SCALES)


def format_float(x: object, digits: int = 3) -> str:
    """Human-friendly scalar formatting (thousands separators, 3 sig)."""
    if isinstance(x, bool):
        return str(x)
    if isinstance(x, float):
        if x != x:  # NaN
            return "nan"
        if abs(x) >= 1000:
            return f"{x:,.0f}"
        return f"{x:.{digits}f}"
    if isinstance(x, int) and abs(x) >= 1000:
        return f"{x:,}"
    return str(x)


def to_jsonable(obj: object) -> object:
    """Recursively convert experiment results to JSON-serializable data.

    Handles numpy scalars/arrays, tuples, sets and non-finite floats
    (mapped to ``None``, since JSON has no NaN/inf).
    """
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [to_jsonable(v) for v in obj]
    if hasattr(obj, "tolist"):  # numpy arrays and scalars
        return to_jsonable(obj.tolist())
    if isinstance(obj, float):
        return obj if obj == obj and abs(obj) != float("inf") else None
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    return str(obj)


def write_bench_json(
    path: pathlib.Path | str,
    name: str,
    results: object,
    *,
    record=None,
    samples: dict | None = None,
    env: dict | None = None,
) -> pathlib.Path:
    """Write one benchmark's results as machine-readable JSON.

    The ``BENCH_<name>.json`` files written next to the printed tables
    are the cross-PR benchmark trajectory: each holds ``{"bench": name,
    "results": ..., "record": ...}`` with everything converted via
    :func:`to_jsonable`. The actual writer is
    :func:`repro.obs.record.write_bench_json` (this is a delegating
    alias kept for the many existing call sites), which embeds a
    normalized :class:`~repro.obs.record.BenchRecord` — environment
    fingerprint plus raw samples — into every file; pass ``samples``
    (metric name → raw values) or a prebuilt ``record`` to enrich it.
    """
    from ..obs.record import write_bench_json as _write

    return _write(path, name, results, record=record, samples=samples, env=env)


def format_table(
    rows: Iterable[Mapping[str, object]],
    *,
    columns: list[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width ASCII table (paper-style)."""
    rows = list(rows)
    if not rows:
        return (title + "\n(empty)") if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[format_float(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
