"""Experiment T1 — Table I: dataset statistics (paper vs generated)."""

from __future__ import annotations

from ..graphs.datasets import Dataset, make_dataset, table1_rows
from .common import EXPERIMENT_SCALES, format_table

__all__ = ["run", "format_results"]


def run(
    *, scales: dict[str, float] | None = None, seed: int = 0
) -> dict[str, object]:
    """Generate all four dataset profiles and tabulate their statistics."""
    scales = scales or EXPERIMENT_SCALES
    datasets: dict[str, Dataset] = {
        name: make_dataset(name, scale=scale, seed=seed)
        for name, scale in scales.items()
    }
    return {"rows": table1_rows(datasets), "datasets": datasets}


def format_results(results: dict[str, object]) -> str:
    """Render the paper-style table for printed output."""
    return format_table(
        results["rows"],  # type: ignore[arg-type]
        title="Table I: Dataset Statistics (paper vs generated)",
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_results(run()))
