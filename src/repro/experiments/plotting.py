"""ASCII figure rendering — terminal-native versions of the paper's plots.

The experiment harness returns plain data; these helpers render it as
fixed-width character plots so the CLI can show figure *shapes* (speedup
curves, time-accuracy fronts) without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_plot", "ascii_speedup_plot", "ascii_bars"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Scatter/line plot of named (x, y) series on a character grid."""
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return title + "\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, pts) in zip(_MARKERS, series.items()):
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{y_hi:.3g}"
    y_lo_label = f"{y_lo:.3g}"
    pad = max(len(y_hi_label), len(y_lo_label))
    for i, row in enumerate(grid):
        label = y_hi_label if i == 0 else (y_lo_label if i == height - 1 else "")
        lines.append(f"{label:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    x_axis = f"{x_lo:.3g}".ljust(width - 8) + f"{x_hi:.3g}"
    lines.append(" " * (pad + 2) + x_axis + (f"  {xlabel}" if xlabel else ""))
    legend = "  ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series.keys())
    )
    lines.append(" " * (pad + 2) + legend)
    if ylabel:
        lines.append(f"(y: {ylabel})")
    return "\n".join(lines)


def ascii_speedup_plot(
    curves: Mapping[str, Mapping[int, float]],
    *,
    title: str = "speedup vs cores",
    width: int = 64,
    height: int = 16,
) -> str:
    """Speedup curves ({name: {cores: speedup}}) with the ideal diagonal."""
    series: dict[str, Sequence[tuple[float, float]]] = {
        name: sorted((float(c), s) for c, s in curve.items())
        for name, curve in curves.items()
    }
    all_cores = sorted({c for curve in curves.values() for c in curve})
    if all_cores:
        series = {"ideal": [(float(c), float(c)) for c in all_cores], **series}
    return ascii_plot(
        series, width=width, height=height, title=title, xlabel="cores",
        ylabel="speedup",
    )


def ascii_bars(
    values: Mapping[str, float], *, width: int = 48, title: str = ""
) -> str:
    """Horizontal bar chart of non-negative named values."""
    if not values:
        return title + "\n(no data)"
    peak = max(values.values())
    if peak < 0:
        raise ValueError("bar values must be non-negative")
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = int(round((value / peak) * width)) if peak > 0 else 0
        lines.append(f"{name:>{label_width}} | {'#' * bar} {value:.3g}")
    return "\n".join(lines)
