"""Autotuned vs static kernel dispatch microbenchmark.

Times a small set of shape classes drawn from the repo's real hot paths
— the serving index's tall-skinny similarity GEMM (transient results),
the trainer's ``out=``-buffered weight-application GEMM, and the
propagation SpMM — under the static ``"fast"`` plan mode and again under
``"auto"`` (per-class plans tuned at first use, tuning excluded from the
timed region). The per-repeat wall series feed ``BENCH_kernels.json``
so bench-record / bench-gate can track dispatch performance like any
other series, and the acceptance criterion is explicit: autotuning must
beat static dispatch by ``min_speedup`` on at least one shape class.

Repeats interleave the two modes (fast, auto, fast, auto, ...) so slow
drift in machine load hits both series equally — same discipline as
:mod:`repro.experiments.samplerbench`.
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from ..graphs.generators import chung_lu_graph
from ..kernels import autotune
from ..kernels import ops as kernel_ops
from .common import format_table

__all__ = [
    "DEFAULT_MIN_SPEEDUP",
    "BENCH_SHAPES",
    "WARM_SHAPES",
    "run",
    "warm",
    "format_results",
]

#: Acceptance floor: autotuned dispatch must beat static fast dispatch
#: by at least this factor on at least one shape class.
DEFAULT_MIN_SPEEDUP = 1.1


def _make_gemm(m: int, k: int, n: int, seed: int, *, transient: bool):
    """Returns ``(workload, class_key)`` for one dense shape class."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    if transient:
        sc = autotune.ShapeClass.for_gemm(m, k, n, a.dtype, variant="transient")
        return (lambda: kernel_ops.gemm(a, b, transient=True)), sc.key
    out = np.empty((m, n), dtype=np.float32)
    sc = autotune.ShapeClass.for_gemm(m, k, n, a.dtype, variant="out")
    return (lambda: kernel_ops.gemm(a, b, out=out)), sc.key


def _make_spmm(vertices: int, avg_degree: float, cols: int, seed: int):
    """Returns ``(workload, class_key)`` for one sparse shape class."""
    rng = np.random.default_rng(seed)
    graph = chung_lu_graph(vertices, avg_degree, rng=rng)
    x = rng.standard_normal((graph.num_vertices, cols)).astype(np.float32)
    sc = autotune.ShapeClass.for_spmm(
        graph.num_vertices, graph.num_edges_directed, cols, x.dtype
    )
    return (lambda: kernel_ops.spmm(graph, x)), sc.key


#: The benched shape classes: (name, factory(seed) -> zero-arg workload).
#: gemm_tall_skinny mirrors the serving index's similarity block
#: (many rows x tiny inner dim, result consumed immediately);
#: gemm_weight_app the trainer's out=-buffered weight application;
#: spmm_prop the sampled-subgraph propagation kernel.
BENCH_SHAPES = (
    # 200k x 64 float32 result = 51 MiB: past glibc's mmap-threshold
    # ceiling, so the fresh allocation faults its pages on every call —
    # the regime where the arena plan's buffer reuse pays off (~3x).
    ("gemm_tall_skinny", lambda seed: _make_gemm(200_000, 16, 64, seed, transient=True)),
    ("gemm_weight_app", lambda seed: _make_gemm(65_536, 64, 64, seed, transient=False)),
    ("spmm_prop", lambda seed: _make_spmm(20_000, 15.0, 64, seed)),
)

#: Smaller variants for ``kernel-tune warm``: enough to populate every
#: op/variant family in the plan table in well under a second.
WARM_SHAPES = (
    ("gemm_tall_skinny", lambda seed: _make_gemm(20_000, 16, 64, seed, transient=True)),
    ("gemm_weight_app", lambda seed: _make_gemm(8_192, 64, 64, seed, transient=False)),
    ("spmm_prop", lambda seed: _make_spmm(4_000, 12.0, 32, seed)),
)


def warm(
    cache: autotune.PlanCache, *, seed: int = 0, shapes=WARM_SHAPES
) -> dict:
    """Tune every shape in ``shapes`` through ``cache``; returns stats.

    Each workload runs once under ``"auto"`` mode — a class not yet in
    the table tunes and persists, a cached class dispatches with zero
    microbenchmarks (what the CI smoke asserts on its second run).
    """
    before = cache.tuner.microbenchmarks
    previous = autotune.set_plan_cache(cache)
    try:
        with autotune.planning("auto"):
            for _, factory in shapes:
                workload, _key = factory(seed)
                workload()
    finally:
        autotune.set_plan_cache(previous)
    return {
        "classes": len(cache.plans),
        "microbenchmarks": cache.tuner.microbenchmarks - before,
        "load_failed": cache.load_failed,
        "path": str(cache.path),
    }


def run(
    *,
    repeats: int = 7,
    seed: int = 0,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
    cache: autotune.PlanCache | None = None,
    shapes=BENCH_SHAPES,
) -> dict:
    """Time static-fast vs autotuned dispatch over the bench shape set."""
    if cache is None:
        cache = autotune.PlanCache(persist=False)
    timer = time.perf_counter
    rows = []
    samples: dict[str, list[float]] = {}
    previous = autotune.set_plan_cache(cache)
    try:
        for name, factory in shapes:
            workload, class_key = factory(seed)
            # Warm both modes outside the timed region: the auto warmup
            # is where first-use tuning happens, the fast warmup pages
            # the operands in.
            with autotune.planning("fast"):
                workload()
            with autotune.planning("auto"):
                workload()
            fast_s: list[float] = []
            auto_s: list[float] = []
            for _ in range(repeats):
                with autotune.planning("fast"):
                    t0 = timer()
                    workload()
                    fast_s.append(timer() - t0)
                with autotune.planning("auto"):
                    t0 = timer()
                    workload()
                    auto_s.append(timer() - t0)
            samples[f"wall_s.fast.{name}"] = fast_s
            samples[f"wall_s.auto.{name}"] = auto_s
            fast_med = statistics.median(fast_s)
            auto_med = statistics.median(auto_s)
            plan = cache.plans.get(class_key)
            rows.append(
                {
                    "shape_class": name,
                    "class_key": class_key,
                    "fast_ms": fast_med * 1e3,
                    "auto_ms": auto_med * 1e3,
                    "speedup": fast_med / auto_med if auto_med > 0 else 0.0,
                    "plan": plan.describe() if plan is not None else "default",
                }
            )
    finally:
        autotune.set_plan_cache(previous)
    speedups = {row["shape_class"]: row["speedup"] for row in rows}
    max_speedup = max(speedups.values()) if speedups else 0.0
    return {
        "rows": rows,
        "samples": samples,
        "speedups": speedups,
        "max_speedup": max_speedup,
        "min_speedup_target": min_speedup,
        "meets_target": max_speedup >= min_speedup,
        "tuned_classes": len(cache.plans),
        "tuning_microbenchmarks": cache.tuner.microbenchmarks,
        "plans": {key: plan.as_dict() for key, plan in cache.plans.items()},
        "repeats": repeats,
    }


def format_results(results: dict) -> str:
    """Paper-style table plus the acceptance verdict line."""
    table = format_table(
        results["rows"], title="kernel dispatch: static fast vs autotuned"
    )
    verdict = (
        f"max speedup {results['max_speedup']:.2f}x "
        f"(target >= {results['min_speedup_target']:.2f}x on any class): "
        + ("PASS" if results["meets_target"] else "FAIL")
    )
    tuned = (
        f"{results['tuned_classes']} shape classes tuned, "
        f"{results['tuning_microbenchmarks']} microbenchmarks"
    )
    return f"{table}\n\n{verdict}\n{tuned}"
