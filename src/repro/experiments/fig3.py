"""Experiment F3 — Figure 3: training-phase scaling and breakdown.

One short metered training run per (dataset, hidden dim) supplies raw
iteration metrics; re-pricing evaluates per-phase simulated times at every
core count, yielding the four panels of Figure 3:

* A — overall iteration speedup vs cores (paper: ~20x at 40 cores),
* B — feature-propagation speedup (paper: ~25x),
* C — weight-application speedup (paper: ~16x, MKL-bound),
* D — execution-time breakdown (sampling a small fraction throughout).
"""

from __future__ import annotations

from ..graphs.datasets import make_dataset
from ..train.config import TrainConfig
from ..train.trainer import GraphSamplingTrainer
from .common import EXPERIMENT_SCALES, format_table
from .repricing import phase_times_per_iteration

__all__ = ["run", "run_dataset", "format_results", "DEFAULT_CORES"]

DEFAULT_CORES = (1, 5, 10, 20, 40)


def run_dataset(
    name: str,
    *,
    scale: float,
    hidden: int,
    cores_list: tuple[int, ...] = DEFAULT_CORES,
    iterations: int = 6,
    p_intra: int = 8,
    seed: int = 0,
) -> dict[str, object]:
    """Figure 3 for one (dataset, hidden-dim) configuration."""
    ds = make_dataset(name, scale=scale, seed=seed)
    n_train = ds.train_idx.shape[0]
    budget = max(min(n_train // 4, 1200), 64)
    cfg = TrainConfig(
        hidden_dims=(hidden, hidden),
        frontier_size=max(budget // 6, 16),
        budget=budget,
        epochs=1,
        eval_every=10**9,  # no eval needed for scaling
        seed=seed,
    )
    trainer = GraphSamplingTrainer(ds, cfg)
    result = trainer.train()
    while result.iterations < iterations:
        result2 = trainer.train(epochs=1)
        result.iteration_metrics.extend(result2.iteration_metrics)
        result.iterations += result2.iterations
    metrics = result.iteration_metrics[:iterations]

    machine = cfg.machine
    per_cores: dict[int, dict[str, float]] = {}
    for cores in sorted(set(cores_list) | {1}):
        phases = phase_times_per_iteration(
            metrics, machine, cores=cores, p_intra=p_intra
        )
        total = sum(phases.values())
        per_cores[cores] = {**phases, "total": total}
    base = per_cores[1]
    rows = []
    for cores in cores_list:
        entry = per_cores[cores]
        rows.append(
            {
                "dataset": name,
                "hidden": hidden,
                "cores": cores,
                "iteration_speedup": base["total"] / entry["total"],
                "featprop_speedup": base["feature_propagation"]
                / entry["feature_propagation"],
                "weight_speedup": base["weight_application"]
                / entry["weight_application"],
                "sampling_speedup": base["sampling"] / entry["sampling"],
                "frac_sampling": entry["sampling"] / entry["total"],
                "frac_featprop": entry["feature_propagation"] / entry["total"],
                "frac_weight": entry["weight_application"] / entry["total"],
            }
        )
    return {"rows": rows, "per_cores": per_cores}


def run(
    *,
    datasets: list[str] | None = None,
    scales: dict[str, float] | None = None,
    hidden_dims: tuple[int, ...] = (512, 1024),
    cores_list: tuple[int, ...] = DEFAULT_CORES,
    iterations: int = 6,
    seed: int = 0,
) -> dict[str, object]:
    """Run the Figure 3 scaling experiment across datasets and dims."""
    scales = scales or EXPERIMENT_SCALES
    names = datasets or list(scales)
    all_rows = []
    detail = {}
    for hidden in hidden_dims:
        for name in names:
            res = run_dataset(
                name,
                scale=scales[name],
                hidden=hidden,
                cores_list=cores_list,
                iterations=iterations,
                seed=seed,
            )
            all_rows.extend(res["rows"])  # type: ignore[arg-type]
            detail[(name, hidden)] = res["per_cores"]
    return {"rows": all_rows, "detail": detail}


def format_results(results: dict[str, object]) -> str:
    """Render the paper-style table for printed output."""
    return format_table(
        results["rows"],  # type: ignore[arg-type]
        title="Figure 3: phase speedups and execution-time breakdown",
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_results(run(hidden_dims=(512,), datasets=["ppi"])))
