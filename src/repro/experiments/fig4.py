"""Experiment F4 — Figure 4: frontier-sampler scaling.

Panel A: sampling speedup vs the number of concurrent sampler instances
``p_inter`` with AVX enabled (``p_intra = 8``). The paper observes
near-linear scaling with a knee between 20 and 40 cores caused by NUMA —
all instances read the one shared adjacency list across sockets.

Panel B: per-instance AVX gain (``p_intra = 8`` vs scalar) at several
``p_inter``. The paper measures ~4x on average, data-dependent: vertices
with degree < 8 under-fill the vector lanes.
"""

from __future__ import annotations

import numpy as np

from ..graphs.datasets import make_dataset
from ..parallel.costmodel import parallel_time
from ..parallel.machine import MachineSpec, xeon_40core
from ..sampling.cost import simulated_sampler_time
from ..sampling.dashboard import DashboardFrontierSampler
from .common import EXPERIMENT_SCALES, format_table

__all__ = ["run", "format_results", "DEFAULT_P_INTER"]

DEFAULT_P_INTER = (1, 5, 10, 20, 30, 40)


def _sampler_for(ds, *, eta: float, seed: int) -> DashboardFrontierSampler:
    n = ds.graph.num_vertices
    budget = max(min(n // 4, 1200), 64)
    cap = 30 if ds.name == "amazon" else None  # the paper's Amazon cap
    # Paper-figure regeneration pins the scalar oracle: its RNG stream is
    # the one the committed modeled-cost artifacts were produced with, so
    # the tables stay bit-stable across engine work.
    return DashboardFrontierSampler(
        ds.graph,
        frontier_size=max(budget // 6, 16),
        budget=budget,
        eta=eta,
        max_entries_per_vertex=cap,
        engine="reference",
    )


def run(
    *,
    datasets: list[str] | None = None,
    scales: dict[str, float] | None = None,
    p_inter_list: tuple[int, ...] = DEFAULT_P_INTER,
    num_subgraphs: int = 40,
    eta: float = 2.0,
    machine: MachineSpec | None = None,
    seed: int = 0,
) -> dict[str, object]:
    """Run the Figure 4 sampler-scaling experiment."""
    scales = scales or EXPERIMENT_SCALES
    names = datasets or list(scales)
    machine = machine or xeon_40core()
    rng = np.random.default_rng(seed)

    rows_a = []
    rows_b = []
    for name in names:
        ds = make_dataset(name, scale=scales[name], seed=seed)
        sampler = _sampler_for(ds, eta=eta, seed=seed)
        stats = [sampler.sample(rng).stats for _ in range(num_subgraphs)]

        # Panel A: throughput speedup of p_inter concurrent instances
        # (AVX on) vs one instance (AVX on).
        base_costs = [
            simulated_sampler_time(s, machine, p_intra=8, contention_factor=1.0)
            for s in stats
        ]
        serial_rate = len(base_costs) / sum(base_costs)
        for p in p_inter_list:
            contention = machine.sampler_contention_factor(p)
            costs = [
                simulated_sampler_time(s, machine, p_intra=8, contention_factor=contention)
                for s in stats
            ]
            # Steady-state throughput: full refill batches of exactly
            # p_inter instances (subgraphs are i.i.d., so cycling the
            # measured costs to fill a batch is unbiased).
            fills = 3
            makespan = 0.0
            produced = 0
            for fill in range(fills):
                batch = [costs[(fill * p + i) % len(costs)] for i in range(p)]
                makespan += parallel_time(batch, min(p, machine.num_cores))
                produced += p
            rate = produced / makespan
            rows_a.append(
                {
                    "dataset": name,
                    "p_inter": p,
                    "sampling_speedup": rate / serial_rate,
                }
            )

        # Panel B: AVX gain at each p_inter (scalar vs 8-lane, same numa).
        for p in p_inter_list:
            contention = machine.sampler_contention_factor(p)
            t_scalar = sum(
                simulated_sampler_time(s, machine, p_intra=1, contention_factor=contention)
                for s in stats
            )
            t_avx = sum(
                simulated_sampler_time(s, machine, p_intra=8, contention_factor=contention)
                for s in stats
            )
            rows_b.append(
                {"dataset": name, "p_inter": p, "avx_speedup": t_scalar / t_avx}
            )
    return {"panel_a": rows_a, "panel_b": rows_b}


def format_results(results: dict[str, object]) -> str:
    """Render the paper-style table for printed output."""
    a = format_table(
        results["panel_a"],  # type: ignore[arg-type]
        title="Figure 4A: sampling speedup vs p_inter (p_intra = 8)",
    )
    b = format_table(
        results["panel_b"],  # type: ignore[arg-type]
        title="Figure 4B: AVX speedup by p_inter",
    )
    return a + "\n\n" + b


if __name__ == "__main__":  # pragma: no cover
    print(format_results(run(datasets=["ppi"])))
