"""Re-price one metered training run at arbitrary parallelism.

Scaling experiments (Figures 3 & 4, Table II) need per-phase times at many
core counts. Instead of re-running training once per configuration, the
trainer records raw :class:`~repro.train.trainer.IterationMetrics` and this
module converts them into simulated per-iteration phase times for any
``(cores, p_intra)`` — the costs are metered quantities, so the conversion
is exact and instant.
"""

from __future__ import annotations

import numpy as np

from ..analysis.speedup import gemm_simulated_time
from ..parallel.costmodel import parallel_time
from ..parallel.machine import MachineSpec
from ..sampling.cost import simulated_sampler_time
from ..train.trainer import IterationMetrics

__all__ = ["phase_times_per_iteration", "iteration_time", "speedup_table"]


def phase_times_per_iteration(
    metrics: list[IterationMetrics],
    machine: MachineSpec,
    *,
    cores: int,
    p_intra: int = 8,
) -> dict[str, float]:
    """Average per-iteration simulated time of each phase at ``cores``.

    Sampling follows Algorithm 5: ``cores`` sampler instances refill the
    pool together (LPT makespan over the batch, amortized over the batch's
    iterations) with the machine's NUMA factor at that occupancy. Feature
    propagation re-evaluates the stored reports; weight application
    re-evaluates the GEMM flop counts under the Amdahl model.
    """
    if not metrics:
        raise ValueError("no iteration metrics to price")
    if cores <= 0:
        raise ValueError("cores must be positive")
    contention = machine.sampler_contention_factor(cores)
    samp_costs = [
        simulated_sampler_time(
            m.sampler_stats, machine, p_intra=p_intra, contention_factor=contention
        )
        for m in metrics
    ]
    # Pool fills of exactly `cores` subgraphs (Algorithm 5: one sampler
    # instance per core); per-iteration time = fill makespan / batch size.
    # Batches are built cyclically from the measured costs so the steady
    # state is priced even when fewer iterations than cores were metered
    # (subgraphs are i.i.d., so cycling is unbiased).
    fill_size = max(cores, 1)
    fills = max(1, -(-len(samp_costs) // fill_size))
    per_fill: list[float] = []
    for fill in range(fills):
        batch = [
            samp_costs[(fill * fill_size + i) % len(samp_costs)]
            for i in range(fill_size)
        ]
        makespan = parallel_time(batch, min(cores, machine.num_cores))
        per_fill.append(makespan / fill_size)
    sampling = float(np.mean(per_fill))

    featprop = float(
        np.mean(
            [
                sum(r.simulated_time(machine, cores=cores) for r in m.prop_reports)
                for m in metrics
            ]
        )
    )
    weight = float(
        np.mean(
            [
                gemm_simulated_time(m.gemm_flops, machine, cores=cores)
                for m in metrics
            ]
        )
    )
    return {
        "sampling": sampling,
        "feature_propagation": featprop,
        "weight_application": weight,
    }


def iteration_time(phases: dict[str, float]) -> float:
    """Total per-iteration time across all phases."""
    return sum(phases.values())


def speedup_table(
    metrics: list[IterationMetrics],
    machine: MachineSpec,
    *,
    cores_list: list[int],
    p_intra: int = 8,
) -> dict[int, dict[str, float]]:
    """Per-core-count phase times plus iteration totals and speedups.

    Returns ``{cores: {phase: time, "total": t, "speedup": s}}`` with
    speedup relative to the 1-core (AVX-enabled, matching the paper's
    serial baseline) configuration.
    """
    out: dict[int, dict[str, float]] = {}
    base_total: float | None = None
    for cores in sorted(set(cores_list) | {1}):
        phases = phase_times_per_iteration(
            metrics, machine, cores=cores, p_intra=p_intra
        )
        total = iteration_time(phases)
        if cores == 1:
            base_total = total
        entry = dict(phases)
        entry["total"] = total
        out[cores] = entry
    assert base_total is not None
    for cores, entry in out.items():
        entry["speedup"] = base_total / entry["total"] if entry["total"] else 1.0
    return {c: out[c] for c in sorted(out) if c in set(cores_list) | {1}}
