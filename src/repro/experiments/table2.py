"""Experiment T2 — Table II: speedup vs parallelized GraphSAGE (Reddit).

The paper compares its C++ implementation against the TensorFlow
GraphSAGE for 1/2/3-layer models on 1-40 cores, reporting speedups from
2x (1 layer, 1 core) to 1306x (3 layers, 40 cores). Two effects drive the
table:

1. **Work**: neighbor explosion. GraphSAGE's per-epoch operation count is
   measured here from *actual sampled supports* of our GraphSAGE
   implementation (not an asymptotic formula), and the proposed method's
   cost comes from re-priced metered training runs.
2. **Scaling**: the paper's numbers imply TF GraphSAGE peaks at ~5.4x
   parallel speedup on 40 cores (communication-bound: d_LS more traffic
   per unit compute). We model that as an Amdahl serial fraction
   (``sage_serial_fraction``, default calibrated to 0.18), and multiply by
   a framework-overhead constant (``tf_overhead``) representing the
   Python/TF interpreter gap — both documented calibrations, recorded in
   EXPERIMENTS.md.

Expected shape: speedups grow monotonically both with depth (orders of
magnitude by 3 layers) and with core count.
"""

from __future__ import annotations

import numpy as np

from ..analysis.speedup import amdahl_speedup
from ..baselines.graphsage import GraphSAGETrainer, SageConfig
from ..graphs.datasets import make_dataset
from ..parallel.machine import MachineSpec, xeon_40core
from ..train.config import TrainConfig
from ..train.trainer import GraphSamplingTrainer
from .common import EXPERIMENT_SCALES, format_table
from .repricing import iteration_time, phase_times_per_iteration

__all__ = ["run", "format_results", "sage_epoch_cost"]

DEFAULT_CORES = (1, 5, 10, 20, 40)


def sage_epoch_cost(
    trainer: GraphSAGETrainer,
    *,
    iterations: int,
    machine: MachineSpec,
    rng: np.random.Generator,
) -> float:
    """Measured per-epoch serial cost (cost units) of GraphSAGE.

    Runs ``iterations`` real training iterations, reads the sampled
    support sizes, and prices aggregation flops, weight flops (forward +
    backward) and feature-gather traffic on the machine's cost parameters.
    """
    cfg = trainer.config
    n_train = trainer.train_graph.num_vertices
    start = len(trainer.support_stats.nodes_per_layer)
    for _ in range(iterations):
        batch = rng.choice(n_train, size=min(cfg.batch_size, n_train), replace=False)
        trainer.train_iteration(batch)
    nodes = trainer.support_stats.nodes_per_layer[start:]
    edges = trainer.support_stats.edges_per_layer[start:]

    # Per-layer feature dims of the model.
    in_dims = []
    dim = trainer.model.in_dim
    for layer in trainer.model.layers:
        in_dims.append(dim)
        dim = layer.output_dim
    head_in = dim

    per_iter_costs = []
    for node_row, edge_row in zip(nodes, edges):
        flops = 0.0
        comm_bytes = 0.0
        for l, (e_l, f_in) in enumerate(zip(edge_row, in_dims)):
            dst_nodes = node_row[l + 1]
            f_out = trainer.model.layers[l].out_dim
            flops += e_l * f_in  # aggregation
            flops += 2.0 * 2.0 * dst_nodes * f_in * f_out  # W_self + W_neigh
            comm_bytes += e_l * f_in * 8.0  # random feature gathers
        flops += 2.0 * node_row[-1] * head_in * trainer.model.num_classes
        flops *= 3.0  # forward + dW + dX
        per_iter_costs.append(
            flops * machine.cost_flop + comm_bytes * machine.dram_cost_per_byte
        )
    batches_per_epoch = -(-n_train // cfg.batch_size)
    return float(np.mean(per_iter_costs)) * batches_per_epoch


def run(
    *,
    scale: float | None = None,
    hidden: int = 128,
    layers_list: tuple[int, ...] = (1, 2, 3),
    cores_list: tuple[int, ...] = DEFAULT_CORES,
    iterations: int = 4,
    tf_overhead: float = 3.0,
    sage_serial_fraction: float = 0.18,
    seed: int = 0,
) -> dict[str, object]:
    """Run the Table II comparison on the Reddit profile."""
    scale = scale if scale is not None else EXPERIMENT_SCALES["reddit"]
    machine = xeon_40core()
    ds = make_dataset("reddit", scale=scale, seed=seed)
    rng = np.random.default_rng(seed)

    rows = []
    detail: dict[int, dict[str, float]] = {}
    for layers in layers_list:
        n_train = ds.train_idx.shape[0]
        budget = max(min(n_train // 4, 1200), 64)
        cfg = TrainConfig(
            hidden_dims=(hidden,) * layers,
            frontier_size=max(budget // 6, 16),
            budget=budget,
            epochs=1,
            eval_every=10**9,
            seed=seed,
        )
        gs_trainer = GraphSamplingTrainer(ds, cfg)
        gs_result = gs_trainer.train()
        while gs_result.iterations < iterations:
            more = gs_trainer.train(epochs=1)
            gs_result.iteration_metrics.extend(more.iteration_metrics)
            gs_result.iterations += more.iterations
        metrics = gs_result.iteration_metrics[:iterations]
        gs_batches = gs_trainer.batches_per_epoch

        # The paper trains GraphSAGE with batch 512 on Reddit's 153k
        # training vertices (~0.33%); keep that ratio so the per-epoch
        # batch count — and with it the neighbor-explosion blow-up —
        # reproduces at reduced graph scale.
        sage_batch = max(8, int(round(n_train * 512 / 153_000)))
        sage_trainer = GraphSAGETrainer(
            ds,
            SageConfig(
                hidden_dims=(hidden,) * layers,
                fanouts=(25,) + (10,) * (layers - 1),
                batch_size=sage_batch,
                epochs=1,
                seed=seed,
            ),
        )
        sage_serial = tf_overhead * sage_epoch_cost(
            sage_trainer, iterations=iterations, machine=machine, rng=rng
        )

        row: dict[str, object] = {"layers": layers}
        for cores in cores_list:
            t_gs = (
                iteration_time(
                    phase_times_per_iteration(metrics, machine, cores=cores)
                )
                * gs_batches
            )
            t_sage = sage_serial / amdahl_speedup(cores, sage_serial_fraction)
            row[f"{cores}-core"] = t_sage / t_gs
        rows.append(row)
        detail[layers] = {
            "gs_epoch_1core": iteration_time(
                phase_times_per_iteration(metrics, machine, cores=1)
            )
            * gs_batches,
            "sage_epoch_serial": sage_serial,
        }
    return {"rows": rows, "detail": detail}


def format_results(results: dict[str, object]) -> str:
    """Render the paper-style table for printed output."""
    return format_table(
        results["rows"],  # type: ignore[arg-type]
        title="Table II: speedup of proposed vs parallelized GraphSAGE (Reddit profile)",
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_results(run()))
