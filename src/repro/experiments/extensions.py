"""Extension experiments X6/X7 — the paper's deferred questions.

* X6 — **accuracy of deeper GCNs**. Section VI-D: "Accuracy evaluation
  for deeper GCN models is out of scope of this paper." The graph-sampling
  design makes depth cheap (Table II); this experiment measures what that
  depth buys: validation F1 of 1-4-layer GS-GCNs under a matched epoch
  budget.

* X7 — **subgraph budget need not grow with the graph**. Section III-B:
  "by choosing proper graph sampling algorithms, we can construct
  subgraphs whose sizes are small, and do not need to be grown with the
  training graph (as shown in Section VI)." This experiment fixes the
  sampler budget and scales the training graph 1x/2x/4x, checking that
  accuracy holds — the property that makes per-epoch complexity
  ``O(L |V| f (f + d))`` with a constant subgraph term.
"""

from __future__ import annotations

import numpy as np

from ..graphs.datasets import make_dataset
from ..train.config import TrainConfig
from ..train.trainer import GraphSamplingTrainer
from .common import EXPERIMENT_SCALES, format_table

__all__ = ["run_depth_accuracy", "run_budget_scaling"]


def run_depth_accuracy(
    *,
    dataset: str = "reddit",
    depths: tuple[int, ...] = (1, 2, 3, 4),
    hidden: int = 64,
    epochs: int = 12,
    seed: int = 0,
) -> dict[str, object]:
    """X6: validation F1 and per-iteration cost of deeper GS-GCNs."""
    ds = make_dataset(dataset, scale=EXPERIMENT_SCALES[dataset], seed=seed)
    n_train = ds.train_idx.shape[0]
    budget = max(min(n_train // 4, 1200), 64)
    rows = []
    for depth in depths:
        cfg = TrainConfig(
            hidden_dims=(hidden,) * depth,
            frontier_size=max(budget // 12, 16),
            budget=budget,
            lr=0.005 if ds.task == "single" else 0.02,
            epochs=epochs,
            eval_every=epochs,
            seed=seed,
        )
        trainer = GraphSamplingTrainer(ds, cfg)
        result = trainer.train()
        mean_flops = float(
            np.mean([m.gemm_flops for m in result.iteration_metrics])
        )
        rows.append(
            {
                "layers": depth,
                "val_f1_micro": result.final_val_f1,
                "gemm_flops_per_iter": mean_flops,
                "num_parameters": trainer.model.num_parameters(),
            }
        )
    return {"rows": rows}


def run_budget_scaling(
    *,
    dataset: str = "reddit",
    base_scale: float | None = None,
    scale_factors: tuple[float, ...] = (1.0, 2.0, 4.0),
    budget: int = 300,
    hidden: int = 64,
    epochs: int = 12,
    seed: int = 0,
) -> dict[str, object]:
    """X7: fixed sampler budget across growing training graphs.

    The claim holds when validation F1 stays roughly flat while the
    graph (and with it, the per-epoch batch count) grows.
    """
    base_scale = base_scale or EXPERIMENT_SCALES[dataset]
    rows = []
    for factor in scale_factors:
        ds = make_dataset(dataset, scale=base_scale * factor, seed=seed)
        cfg = TrainConfig(
            hidden_dims=(hidden, hidden),
            frontier_size=max(budget // 12, 16),
            budget=budget,
            lr=0.005 if ds.task == "single" else 0.02,
            epochs=epochs,
            eval_every=epochs,
            seed=seed,
        )
        trainer = GraphSamplingTrainer(ds, cfg)
        result = trainer.train()
        rows.append(
            {
                "graph_scale": factor,
                "num_vertices": ds.num_vertices,
                "budget": budget,
                "budget_fraction": budget / trainer.train_graph.num_vertices,
                "batches_per_epoch": trainer.batches_per_epoch,
                "val_f1_micro": result.final_val_f1,
            }
        )
    return {"rows": rows}


if __name__ == "__main__":  # pragma: no cover
    print(format_table(run_depth_accuracy()["rows"], title="X6: depth vs accuracy"))
    print()
    print(format_table(run_budget_scaling()["rows"], title="X7: fixed budget, growing graph"))
