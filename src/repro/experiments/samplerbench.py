"""Sampler-throughput microbenchmark: fast vs reference Dashboard engine.

Measures real wall-clock subgraphs/second of both
:class:`~repro.sampling.dashboard.DashboardFrontierSampler` engines on the
Reddit-profile dataset (the profile whose scale drives the paper's Fig. 4
sampling-cost discussion) and reports the speedup. The workload is sized
so the pop/replace/append loop dominates — the regime the vectorized
engine exists for; at trivial budgets the shared subgraph-induction cost
floors the ratio.

The ``samples`` dict carries per-repeat wall times for each engine so the
emitted ``BENCH_sampler_throughput.json`` feeds the bench-record /
bench-gate history tooling: the fast-engine series is the protected
baseline, the reference series documents the oracle's cost, and the
``throughput.fast`` series (subgraphs/sec, higher-is-better) is the
headline metric.
"""

from __future__ import annotations

import time

import numpy as np

from ..graphs.datasets import make_dataset
from ..sampling.dashboard import ENGINES, DashboardFrontierSampler
from .common import EXPERIMENT_SCALES, format_table

__all__ = ["run", "format_results", "DEFAULT_MIN_SPEEDUP"]

#: The speedup the fast engine is expected to clear on this workload
#: (asserted by ``benchmarks/bench_sampler_throughput.py`` and available
#: to ``sampler-bench --min-speedup``).
DEFAULT_MIN_SPEEDUP = 3.0


def run(
    *,
    dataset: str = "reddit",
    scale: float | None = None,
    budget: int | None = None,
    frontier_size: int | None = None,
    repeats: int = 12,
    seed: int = 0,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
) -> dict:
    """Time both engines on one workload; returns rows + raw samples.

    The default workload: Reddit profile at the standard experiment
    scale, ``budget = 3n/4`` and ``frontier = budget/6`` (the paper's
    frontier:budget ratio at a size where sampling work, not subgraph
    induction, dominates). Engines are timed interleaved — repeat ``i``
    of every engine runs back-to-back — so slow host drift hits both
    equally.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    ds = make_dataset(
        dataset,
        scale=EXPERIMENT_SCALES[dataset] if scale is None else scale,
        seed=seed,
    )
    graph = ds.graph
    n = graph.num_vertices
    if budget is None:
        budget = max(min(3 * n // 4, 1750), 64)
    if frontier_size is None:
        frontier_size = max(budget // 6, 16)

    samplers = {
        engine: DashboardFrontierSampler(
            graph,
            frontier_size=frontier_size,
            budget=budget,
            engine=engine,
        )
        for engine in ENGINES
    }
    rngs = {engine: np.random.default_rng(seed) for engine in ENGINES}
    for engine, sampler in samplers.items():
        sampler.sample(rngs[engine])  # warmup: allocators, caches

    wall: dict[str, list[float]] = {engine: [] for engine in ENGINES}
    stats: dict[str, dict] = {}
    for _ in range(repeats):
        for engine, sampler in samplers.items():
            t0 = time.perf_counter()
            sub = sampler.sample(rngs[engine])
            wall[engine].append(time.perf_counter() - t0)
            stats[engine] = sub.stats

    rows = []
    med = {}
    for engine in ENGINES:
        times = np.asarray(wall[engine])
        med[engine] = float(np.median(times))
        rows.append(
            {
                "engine": engine,
                "median_ms": med[engine] * 1e3,
                "subgraphs_per_sec": 1.0 / med[engine],
                "probes_per_pop": stats[engine]["probes"]
                / max(stats[engine]["pops"], 1.0),
                "cleanups": stats[engine]["cleanups"],
            }
        )
    speedup = med["reference"] / med["fast"]
    return {
        "dataset": dataset,
        "num_vertices": n,
        "budget": budget,
        "frontier_size": frontier_size,
        "repeats": repeats,
        "rows": rows,
        "speedup": speedup,
        "min_speedup": min_speedup,
        "meets_target": bool(speedup >= min_speedup),
        "samples": {
            "sample_wall_s.fast": wall["fast"],
            "sample_wall_s.reference": wall["reference"],
            "throughput.fast": [1.0 / t for t in wall["fast"]],
        },
    }


def format_results(results: dict) -> str:
    """Render the per-engine table plus the speedup verdict line."""
    table = format_table(
        results["rows"],
        title=(
            f"sampler throughput — {results['dataset']} "
            f"(n={results['num_vertices']}, budget={results['budget']}, "
            f"m={results['frontier_size']})"
        ),
    )
    verdict = (
        f"fast vs reference speedup: {results['speedup']:.2f}x "
        f"(target >= {results['min_speedup']:.1f}x, "
        f"{'met' if results['meets_target'] else 'NOT met'})"
    )
    return f"{table}\n\n{verdict}"
