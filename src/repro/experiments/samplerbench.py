"""Sampler-throughput microbenchmark: fast vs reference Dashboard engine.

Measures real wall-clock subgraphs/second of both
:class:`~repro.sampling.dashboard.DashboardFrontierSampler` engines on the
Reddit-profile dataset (the profile whose scale drives the paper's Fig. 4
sampling-cost discussion) and reports the speedup. The workload is sized
so the pop/replace/append loop dominates — the regime the vectorized
engine exists for; at trivial budgets the shared subgraph-induction cost
floors the ratio.

The ``samples`` dict carries per-repeat wall times for each engine so the
emitted ``BENCH_sampler_throughput.json`` feeds the bench-record /
bench-gate history tooling: the fast-engine series is the protected
baseline, the reference series documents the oracle's cost, and the
``throughput.fast`` series (subgraphs/sec, higher-is-better) is the
headline metric.
"""

from __future__ import annotations

import time

import numpy as np

from ..graphs.datasets import make_dataset
from ..sampling.dashboard import ENGINES, DashboardFrontierSampler
from ..sampling.zoo import FAMILIES, make_sampler
from .common import EXPERIMENT_SCALES, format_table

__all__ = [
    "run",
    "run_zoo",
    "format_results",
    "format_zoo_results",
    "DEFAULT_MIN_SPEEDUP",
    "DEFAULT_ZOO_MIN_SPEEDUP",
]

#: The speedup the fast engine is expected to clear on this workload
#: (asserted by ``benchmarks/bench_sampler_throughput.py`` and available
#: to ``sampler-bench --min-speedup``).
DEFAULT_MIN_SPEEDUP = 3.0

#: Per-family fast-vs-reference target for the zoo comparison: every
#: family must clear 2x (the dashboard clears far more; the cheap edge
#: families have less scalar work to beat).
DEFAULT_ZOO_MIN_SPEEDUP = 2.0


def run(
    *,
    dataset: str = "reddit",
    scale: float | None = None,
    budget: int | None = None,
    frontier_size: int | None = None,
    repeats: int = 12,
    seed: int = 0,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
) -> dict:
    """Time both engines on one workload; returns rows + raw samples.

    The default workload: Reddit profile at the standard experiment
    scale, ``budget = 3n/4`` and ``frontier = budget/6`` (the paper's
    frontier:budget ratio at a size where sampling work, not subgraph
    induction, dominates). Engines are timed interleaved — repeat ``i``
    of every engine runs back-to-back — so slow host drift hits both
    equally.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    ds = make_dataset(
        dataset,
        scale=EXPERIMENT_SCALES[dataset] if scale is None else scale,
        seed=seed,
    )
    graph = ds.graph
    n = graph.num_vertices
    if budget is None:
        budget = max(min(3 * n // 4, 1750), 64)
    if frontier_size is None:
        frontier_size = max(budget // 6, 16)

    samplers = {
        engine: DashboardFrontierSampler(
            graph,
            frontier_size=frontier_size,
            budget=budget,
            engine=engine,
        )
        for engine in ENGINES
    }
    rngs = {engine: np.random.default_rng(seed) for engine in ENGINES}
    for engine, sampler in samplers.items():
        sampler.sample(rngs[engine])  # warmup: allocators, caches

    wall: dict[str, list[float]] = {engine: [] for engine in ENGINES}
    stats: dict[str, dict] = {}
    for _ in range(repeats):
        for engine, sampler in samplers.items():
            t0 = time.perf_counter()
            sub = sampler.sample(rngs[engine])
            wall[engine].append(time.perf_counter() - t0)
            stats[engine] = sub.stats

    rows = []
    med = {}
    for engine in ENGINES:
        times = np.asarray(wall[engine])
        med[engine] = float(np.median(times))
        rows.append(
            {
                "engine": engine,
                "median_ms": med[engine] * 1e3,
                "subgraphs_per_sec": 1.0 / med[engine],
                "probes_per_pop": stats[engine]["probes"]
                / max(stats[engine]["pops"], 1.0),
                "cleanups": stats[engine]["cleanups"],
            }
        )
    speedup = med["reference"] / med["fast"]
    return {
        "dataset": dataset,
        "num_vertices": n,
        "budget": budget,
        "frontier_size": frontier_size,
        "repeats": repeats,
        "rows": rows,
        "speedup": speedup,
        "min_speedup": min_speedup,
        "meets_target": bool(speedup >= min_speedup),
        "samples": {
            "sample_wall_s.fast": wall["fast"],
            "sample_wall_s.reference": wall["reference"],
            "throughput.fast": [1.0 / t for t in wall["fast"]],
        },
    }


def run_zoo(
    *,
    dataset: str = "reddit",
    scale: float | None = None,
    budget: int | None = None,
    frontier_size: int | None = None,
    families: tuple[str, ...] | None = None,
    walk_depth: int = 3,
    repeats: int = 12,
    seed: int = 0,
    min_speedup: float = DEFAULT_ZOO_MIN_SPEEDUP,
) -> dict:
    """Four-family sampler comparison: fast vs reference per family.

    Same workload sizing as :func:`run` — Reddit profile, ``budget =
    3n/4`` — with every family built at that shared budget through
    :func:`repro.sampling.zoo.make_sampler`, so throughputs are
    comparable at fixed subgraph size. Timing is interleaved across all
    (family, engine) pairs per repeat so host drift hits every series
    equally. ``meets_target`` requires *every* family's fast engine to
    clear ``min_speedup``.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    fams = FAMILIES if families is None else tuple(families)
    for fam in fams:
        if fam not in FAMILIES:
            raise ValueError(f"unknown family {fam!r}; choose from {FAMILIES}")
    ds = make_dataset(
        dataset,
        scale=EXPERIMENT_SCALES[dataset] if scale is None else scale,
        seed=seed,
    )
    graph = ds.graph
    n = graph.num_vertices
    if budget is None:
        budget = max(min(3 * n // 4, 1750), 64)
    if frontier_size is None:
        frontier_size = max(budget // 6, 16)

    samplers = {
        (fam, engine): make_sampler(
            fam,
            graph,
            budget=budget,
            frontier_size=frontier_size,
            engine=engine,
            walk_depth=walk_depth,
        )
        for fam in fams
        for engine in ENGINES
    }
    rngs = {key: np.random.default_rng(seed) for key in samplers}
    for key, sampler in samplers.items():
        sampler.sample(rngs[key])  # warmup: allocators, caches

    wall: dict[tuple[str, str], list[float]] = {key: [] for key in samplers}
    stats: dict[tuple[str, str], dict] = {}
    for _ in range(repeats):
        for key, sampler in samplers.items():
            t0 = time.perf_counter()
            sub = sampler.sample(rngs[key])
            wall[key].append(time.perf_counter() - t0)
            stats[key] = sub.stats

    rows = []
    speedups: dict[str, float] = {}
    samples: dict[str, list[float]] = {}
    for fam in fams:
        med = {}
        for engine in ENGINES:
            times = np.asarray(wall[(fam, engine)])
            med[engine] = float(np.median(times))
            samples[f"sample_wall_s.{fam}.{engine}"] = wall[(fam, engine)]
        samples[f"throughput.{fam}.fast"] = [
            1.0 / t for t in wall[(fam, "fast")]
        ]
        speedups[fam] = med["reference"] / med["fast"]
        rows.append(
            {
                "family": fam,
                "fast_median_ms": med["fast"] * 1e3,
                "reference_median_ms": med["reference"] * 1e3,
                "subgraphs_per_sec": 1.0 / med["fast"],
                "unique_vertices": stats[(fam, "fast")]["unique_vertices"],
                "speedup": speedups[fam],
            }
        )
    return {
        "dataset": dataset,
        "num_vertices": n,
        "budget": budget,
        "frontier_size": frontier_size,
        "walk_depth": walk_depth,
        "families": list(fams),
        "repeats": repeats,
        "rows": rows,
        "speedups": speedups,
        "min_speedup": min_speedup,
        "meets_target": bool(
            all(s >= min_speedup for s in speedups.values())
        ),
        "samples": samples,
    }


def format_results(results: dict) -> str:
    """Render the per-engine table plus the speedup verdict line."""
    table = format_table(
        results["rows"],
        title=(
            f"sampler throughput — {results['dataset']} "
            f"(n={results['num_vertices']}, budget={results['budget']}, "
            f"m={results['frontier_size']})"
        ),
    )
    verdict = (
        f"fast vs reference speedup: {results['speedup']:.2f}x "
        f"(target >= {results['min_speedup']:.1f}x, "
        f"{'met' if results['meets_target'] else 'NOT met'})"
    )
    return f"{table}\n\n{verdict}"


def format_zoo_results(results: dict) -> str:
    """Render the per-family comparison table plus the verdict line."""
    table = format_table(
        results["rows"],
        title=(
            f"sampler zoo — {results['dataset']} "
            f"(n={results['num_vertices']}, budget={results['budget']})"
        ),
    )
    worst = min(results["speedups"].values())
    verdict = (
        f"per-family fast vs reference speedup: worst {worst:.2f}x "
        f"(target >= {results['min_speedup']:.1f}x for every family, "
        f"{'met' if results['meets_target'] else 'NOT met'})"
    )
    return f"{table}\n\n{verdict}"
