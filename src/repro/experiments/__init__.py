"""Experiment harness: one module per paper table/figure plus ablations.

Each module exposes ``run(...) -> dict`` (plain rows/series) and a
``format_results`` helper rendering the paper-style table. See DESIGN.md's
experiment index for the mapping to paper artifacts.
"""

from . import ablations, extensions, fig2, fig3, fig4, serving, table1, table2
from .common import (
    DATASET_NAMES,
    EXPERIMENT_SCALES,
    format_table,
    to_jsonable,
    write_bench_json,
)
from .plotting import ascii_bars, ascii_plot, ascii_speedup_plot
from .repricing import iteration_time, phase_times_per_iteration, speedup_table

__all__ = [
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "table2",
    "ablations",
    "extensions",
    "serving",
    "EXPERIMENT_SCALES",
    "DATASET_NAMES",
    "format_table",
    "to_jsonable",
    "write_bench_json",
    "phase_times_per_iteration",
    "iteration_time",
    "speedup_table",
    "ascii_plot",
    "ascii_speedup_plot",
    "ascii_bars",
]
