"""Experiment F2 — Figure 2: accuracy (F1-micro) vs sequential training time.

Trains the proposed graph-sampling GCN and the baselines (GraphSAGE,
Batched GCN, optionally FastGCN) single-threaded on each dataset profile,
collecting (cumulative wall seconds, validation F1) curves, then applies
the paper's speedup rule: with ``a0`` the best baseline accuracy, the
threshold is ``a0 - 0.0025`` and the serial training speedup is the ratio
of times to first reach that threshold (best baseline over proposed).

Paper shapes to expect: GraphSAGE is the strongest baseline; the proposed
method reaches the threshold 1.9x-7.8x faster serially and matches or
exceeds final accuracy on every dataset.
"""

from __future__ import annotations

import numpy as np

from ..baselines.batched_gcn import BatchedGCNConfig, BatchedGCNTrainer
from ..baselines.fastgcn import FastGCNConfig, FastGCNTrainer
from ..baselines.graphsage import GraphSAGETrainer, SageConfig
from ..graphs.datasets import Dataset, make_dataset
from ..parallel.machine import xeon_40core
from ..train.config import TrainConfig
from ..train.trainer import GraphSamplingTrainer, TrainResult
from .common import EXPERIMENT_SCALES, format_table
from .modelcosts import batched_gcn_iteration_cost, graphsage_iteration_cost

__all__ = ["run", "run_dataset", "format_results", "ACCURACY_SLACK"]

ACCURACY_SLACK = 0.0025  # the paper's allowed stochastic variance

# Per-dataset training recipes for the proposed method:
# (proposed epochs, baseline epochs, dropout, weight decay, lr).
# The multi-label profiles need regularization: frontier subgraphs are
# sparser than the full graph, so the unregularized model leans on the
# self-feature path and overfits; dropout + weight decay restore the
# paper's accuracy parity (the paper's reference implementations tune
# per-dataset hyperparameters the same way).
RECIPES: dict[str, tuple[int, int, float, float, float]] = {
    "ppi": (120, 30, 0.2, 1e-3, 0.01),
    "reddit": (16, 6, 0.0, 0.0, 0.005),
    "yelp": (90, 10, 0.3, 1e-3, 0.02),
    "amazon": (70, 10, 0.3, 1e-3, 0.02),
}


def _curve(result: TrainResult) -> list[tuple[float, float]]:
    return [
        (rec.wall_seconds_total, rec.val.f1_micro)
        for rec in result.epochs
        if rec.val is not None
    ]


def _time_to_threshold(
    curve: list[tuple[float, float]], threshold: float
) -> float | None:
    for t, f1 in curve:
        if f1 >= threshold:
            return t
    return None


def run_dataset(
    dataset: Dataset,
    *,
    hidden: int = 128,
    epoch_scale: float = 1.0,
    seed: int = 0,
    include_fastgcn: bool = False,
) -> dict[str, object]:
    """Figure 2 for one dataset; returns curves and the speedup row."""
    n_train = dataset.train_idx.shape[0]
    budget = max(min(n_train // 4, 1200), 64)
    frontier = max(budget // 12, 16)
    hidden_dims = (hidden, hidden)
    # Multi-label sigmoid heads train with larger steps than softmax heads
    # (the per-class gradients are sparse); applied uniformly to every
    # method so the comparison stays fair.
    lr_baseline = 0.02 if dataset.task == "multi" else 0.01
    prop_epochs, base_epochs, dropout, weight_decay, lr_proposed = RECIPES.get(
        dataset.name, (20, 8, 0.0, 0.0, 0.02 if dataset.task == "multi" else 0.005)
    )
    prop_epochs = max(int(round(prop_epochs * epoch_scale)), 2)
    base_epochs = max(int(round(base_epochs * epoch_scale)), 2)

    proposed = GraphSamplingTrainer(
        dataset,
        TrainConfig(
            hidden_dims=hidden_dims,
            frontier_size=frontier,
            budget=budget,
            lr=lr_proposed,
            dropout=dropout,
            weight_decay=weight_decay,
            epochs=prop_epochs,
            eval_every=1,
            seed=seed,
        ),
    )
    curves: dict[str, list[tuple[float, float]]] = {}
    modeled: dict[str, list[tuple[float, float]]] = {}
    machine = xeon_40core()

    proposed_result = proposed.train()
    curves["proposed"] = _curve(proposed_result)
    modeled["proposed"] = [
        (rec.sim_time_total, rec.val.f1_micro)
        for rec in proposed_result.epochs
        if rec.val is not None
    ]

    sage = GraphSAGETrainer(
        dataset,
        SageConfig(
            hidden_dims=hidden_dims,
            fanouts=(25,) + (10,) * (len(hidden_dims) - 1),
            batch_size=256,
            lr=lr_baseline,
            epochs=base_epochs,
            eval_every=1,
            seed=seed,
        ),
    )
    sage_result = sage.train()
    curves["graphsage"] = _curve(sage_result)
    sage_iter_cost = graphsage_iteration_cost(sage, machine)
    sage_batches = -(-sage.train_graph.num_vertices // sage.config.batch_size)
    modeled["graphsage"] = [
        (sage_iter_cost * sage_batches * (rec.epoch + 1), rec.val.f1_micro)
        for rec in sage_result.epochs
        if rec.val is not None
    ]

    batched = BatchedGCNTrainer(
        dataset,
        BatchedGCNConfig(
            hidden_dims=hidden_dims,
            batch_size=256,
            lr=lr_baseline,
            epochs=base_epochs,
            eval_every=1,
            seed=seed,
        ),
    )
    batched_result = batched.train()
    curves["batched_gcn"] = _curve(batched_result)
    batched_iter_cost = batched_gcn_iteration_cost(batched, machine)
    batched_batches = -(
        -batched.train_graph.num_vertices // batched.config.batch_size
    )
    modeled["batched_gcn"] = [
        (batched_iter_cost * batched_batches * (rec.epoch + 1), rec.val.f1_micro)
        for rec in batched_result.epochs
        if rec.val is not None
    ]

    if include_fastgcn:
        fast = FastGCNTrainer(
            dataset,
            FastGCNConfig(
                hidden_dims=hidden_dims,
                layer_sizes=(400,) * len(hidden_dims),
                batch_size=256,
                lr=lr_baseline,
                epochs=base_epochs,
                eval_every=1,
                seed=seed,
            ),
        )
        curves["fastgcn"] = _curve(fast.train())

    baselines = {k: v for k, v in curves.items() if k != "proposed"}
    a0 = max(max(f1 for _, f1 in c) for c in baselines.values())
    threshold = a0 - ACCURACY_SLACK
    t_ours = _time_to_threshold(curves["proposed"], threshold)
    t_base = min(
        (
            t
            for c in baselines.values()
            if (t := _time_to_threshold(c, threshold)) is not None
        ),
        default=None,
    )
    speedup = (t_base / t_ours) if (t_ours is not None and t_base is not None) else None

    # Modeled (work-based) speedup: same threshold, but the x-axis is the
    # machine cost model applied uniformly to every method — the quantity
    # that survives graph down-scaling (see modelcosts docstring).
    m_ours = _time_to_threshold(modeled["proposed"], threshold)
    m_base = min(
        (
            t
            for k, c in modeled.items()
            if k != "proposed"
            and (t := _time_to_threshold(c, threshold)) is not None
        ),
        default=None,
    )
    modeled_speedup = (
        (m_base / m_ours) if (m_ours is not None and m_base is not None) else None
    )
    return {
        "dataset": dataset.name,
        "curves": curves,
        "modeled_curves": modeled,
        "best_baseline_f1": a0,
        "proposed_final_f1": max(f1 for _, f1 in curves["proposed"]),
        "threshold": threshold,
        "time_proposed": t_ours,
        "time_best_baseline": t_base,
        "serial_speedup": speedup,
        "modeled_speedup": modeled_speedup,
    }


def run(
    *,
    datasets: list[str] | None = None,
    scales: dict[str, float] | None = None,
    hidden: int = 128,
    epoch_scale: float = 1.0,
    seed: int = 0,
    include_fastgcn: bool = False,
) -> dict[str, object]:
    """Run the Figure 2 comparison on the requested dataset profiles."""
    scales = scales or EXPERIMENT_SCALES
    names = datasets or list(scales)
    per_dataset = []
    for name in names:
        ds = make_dataset(name, scale=scales[name], seed=seed)
        per_dataset.append(
            run_dataset(
                ds,
                hidden=hidden,
                epoch_scale=epoch_scale,
                seed=seed,
                include_fastgcn=include_fastgcn,
            )
        )
    return {"results": per_dataset}


def format_results(results: dict[str, object]) -> str:
    """Render the paper-style table for printed output."""
    rows = []
    for r in results["results"]:  # type: ignore[union-attr]
        rows.append(
            {
                "dataset": r["dataset"],
                "best_baseline_f1": r["best_baseline_f1"],
                "proposed_f1": r["proposed_final_f1"],
                "threshold": r["threshold"],
                "t_baseline_s": r["time_best_baseline"],
                "t_proposed_s": r["time_proposed"],
                "wall_speedup": r["serial_speedup"],
                "modeled_speedup": r["modeled_speedup"],
            }
        )
    return format_table(
        rows, title="Figure 2: time-accuracy (serial) and speedup at threshold"
    )


if __name__ == "__main__":  # pragma: no cover
    print(format_results(run()))
