"""repro — reproduction of "Accurate, Efficient and Scalable Graph Embedding"
(Zeng, Zhou, Srivastava, Kannan, Prasanna; IPDPS 2019).

A from-scratch Python implementation of the paper's graph-sampling-based
GCN ("GS-GCN", the GraphSAINT precursor) and everything it depends on:

* :mod:`repro.graphs` — CSR graph engine, synthetic dataset profiles
  mirroring Table I, connectivity statistics;
* :mod:`repro.sampling` — frontier sampling, the parallel Dashboard data
  structure (Algorithms 3-4), the subgraph-pool scheduler (Algorithm 5),
  cost models (Eq. 2, Theorem 1), and extension samplers;
* :mod:`repro.nn` — GCN layers with self/neighbor weights, losses, Adam,
  F1 metrics, gradient checking;
* :mod:`repro.kernels` — the unified compute-kernel layer every GEMM and
  SpMM dispatches through: backend registry, dtype policies
  (float64 reference / float32 fast), workspace buffer arena, and
  centralized flop/time accounting;
* :mod:`repro.propagation` — spmm kernels, Algorithm 6 feature-partitioned
  propagation, the communication model and Theorem 2;
* :mod:`repro.parallel` — the simulated 40-core Xeon used to regenerate
  the paper's scaling results on any host;
* :mod:`repro.baselines` — GraphSAGE, FastGCN and Batched GCN;
* :mod:`repro.train` — the Algorithm 1/5 training loop and evaluation;
* :mod:`repro.serving` — the downstream serving layer (Section I's
  motivating workload): ANN index, micro-batching, caching, metrics;
* :mod:`repro.obs` — cross-cutting observability: hierarchical spans,
  process-wide counters/histograms, trace export (off by default;
  see ``docs/observability.md``);
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import make_dataset, TrainConfig, GraphSamplingTrainer

    ds = make_dataset("ppi", scale=0.08, seed=0)
    trainer = GraphSamplingTrainer(ds, TrainConfig(epochs=20))
    result = trainer.train()
    print(result.final_val_f1)
"""

from . import kernels, obs
from .graphs import CSRGraph, Dataset, make_dataset
from .nn import GCN, Adam, f1_micro
from .parallel import MachineSpec, xeon_40core
from .propagation import MeanAggregator, PartitionedPropagator
from .sampling import (
    DashboardFrontierSampler,
    FrontierSampler,
    GraphSampler,
    SampledSubgraph,
    SubgraphPool,
)
from .serving import EmbeddingServer, ServerConfig, zipf_trace
from .train import Evaluator, GraphSamplingTrainer, TrainConfig, TrainResult

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "Dataset",
    "make_dataset",
    "GCN",
    "Adam",
    "f1_micro",
    "MachineSpec",
    "xeon_40core",
    "MeanAggregator",
    "PartitionedPropagator",
    "GraphSampler",
    "SampledSubgraph",
    "FrontierSampler",
    "DashboardFrontierSampler",
    "SubgraphPool",
    "TrainConfig",
    "GraphSamplingTrainer",
    "TrainResult",
    "Evaluator",
    "EmbeddingServer",
    "ServerConfig",
    "zipf_trace",
    "kernels",
    "obs",
    "__version__",
]
