"""Flight recorder: an always-on ring buffer for post-hoc tail debugging.

Aggregate metrics say *that* p99 regressed; the flight recorder keeps
enough recent raw material to say *why* — without asking anyone to
re-run with extra instrumentation. While instrumentation is enabled it
continuously retains, in fixed-capacity ring buffers:

* the most recent **completed root spans** (request trees included),
  fed by the tracer's root sink (:func:`repro.obs.trace.set_root_sink`
  — the recorder never blocks span recording, it just appends to a
  deque);
* discrete **events** (producer stalls, hedge fires, shed decisions)
  posted via :func:`flight_event`;
* **counter deltas** since the previous dump, so a dump shows what
  moved recently rather than lifetime totals.

:meth:`FlightRecorder.dump` writes the whole state as an
``OBS_flightdump_*.json`` diagnostic bundle — recent spans, the event
log, metric + exemplar snapshots, and the environment fingerprint —
next to the bench artifacts. :meth:`FlightRecorder.maybe_dump` is the
debounced variant wired into :mod:`repro.obs.slo`: the first breached
rule evaluation triggers a dump automatically, subsequent breaches
within the debounce window do not re-dump. ``python -m repro.cli
flight-dump`` triggers one on demand.

Disabled-path cost is unchanged: the gate is checked before any buffer
is touched, and with instrumentation off no root spans exist to record.
"""

from __future__ import annotations

import collections
import json
import pathlib
import threading
import time

from ._gate import GATE
from .metrics import REGISTRY, MetricsRegistry

__all__ = [
    "FlightRecorder",
    "get_flight_recorder",
    "set_flight_recorder",
    "flight_event",
]

#: Default ring capacities: recent spans and events, sized to hold the
#: interesting tail of a bench-scale replay without unbounded growth.
SPAN_CAPACITY = 256
EVENT_CAPACITY = 512

#: Minimum seconds between automatic (``maybe_dump``) dumps.
DEBOUNCE_SECONDS = 30.0


class FlightRecorder:
    """Fixed-capacity recorder of recent spans, events and counter moves.

    Parameters
    ----------
    span_capacity / event_capacity:
        Ring sizes; the oldest entries fall off when full.
    clock:
        Wall clock used for event timestamps and dump debouncing;
        injectable so tests control the debounce window deterministically.
    out_dir:
        Default directory for dump files (cwd when ``None``); the CLI
        points this at its ``--out`` directory so automatic breach dumps
        land next to the other artifacts.
    debounce_seconds:
        Minimum spacing between :meth:`maybe_dump` dumps.
    """

    def __init__(
        self,
        span_capacity: int = SPAN_CAPACITY,
        event_capacity: int = EVENT_CAPACITY,
        clock=time.monotonic,
        out_dir=None,
        debounce_seconds: float = DEBOUNCE_SECONDS,
    ) -> None:
        self._spans = collections.deque(maxlen=span_capacity)
        self._events = collections.deque(maxlen=event_capacity)
        self._lock = threading.Lock()
        self._counter_base: dict[str, float] = {}
        self.clock = clock
        self.out_dir = out_dir
        self.debounce_seconds = debounce_seconds
        self._last_dump: float | None = None
        self.dump_count = 0

    # -- recording -------------------------------------------------------
    def record_span(self, sp) -> None:
        """Retain a completed root span (the tracer's root-sink hook).

        Appends a reference, not a copy — deque appends are atomic and
        completed spans are no longer mutated, so this is safe from any
        recording thread and adds no serialization to the hot path.
        """
        self._spans.append(sp)

    def event(self, name: str, **attrs: object) -> None:
        """Append a discrete event (stamped with the recorder's clock)."""
        self._events.append({"name": name, "t": self.clock(), "attrs": attrs})

    def clear(self) -> None:
        """Drop buffered spans/events and rebase counter deltas."""
        with self._lock:
            self._spans.clear()
            self._events.clear()
            self._counter_base.clear()
            self._last_dump = None

    # -- introspection ---------------------------------------------------
    @property
    def spans(self) -> list:
        """Buffered root spans, oldest first."""
        return list(self._spans)

    @property
    def events(self) -> list[dict]:
        """Buffered events, oldest first."""
        return list(self._events)

    def counter_deltas(self, registry: MetricsRegistry | None = None) -> dict:
        """Counter movement since the last dump (or since creation)."""
        registry = registry or REGISTRY
        current = {k: c.value for k, c in registry.counters.items()}
        return {
            k: v - self._counter_base.get(k, 0.0)
            for k, v in sorted(current.items())
            if v != self._counter_base.get(k, 0.0)
        }

    # -- dumping ---------------------------------------------------------
    def dump(
        self,
        name: str = "flight",
        out_dir=None,
        reason: str = "manual",
        registry: MetricsRegistry | None = None,
    ) -> pathlib.Path:
        """Write the diagnostic bundle; returns the file path.

        The bundle is self-contained: recent span trees (request trees
        addressable by ``obs-report --request`` via ``--trace`` pointed
        at the dump), the event log, full metric + exemplar snapshots,
        counter deltas since the previous dump, and the environment
        fingerprint so a dump from CI identifies the machine that
        produced it.
        """
        from .export import _jsonable, span_to_dict
        from .record import environment_fingerprint

        registry = registry or REGISTRY
        with self._lock:
            spans = list(self._spans)
            events = list(self._events)
            deltas = self.counter_deltas(registry)
            self._counter_base = {
                k: c.value for k, c in registry.counters.items()
            }
            self._last_dump = self.clock()
            self.dump_count += 1
            n = self.dump_count
        doc = {
            "obs": f"flightdump_{name}",
            "kind": "flightdump",
            "reason": reason,
            "dump_index": n,
            "env": environment_fingerprint(),
            "spans": [span_to_dict(sp) for sp in spans],
            "events": events,
            "counter_deltas": deltas,
            "metrics": registry.snapshot(),
            "exemplars": registry.exemplar_snapshot(),
        }
        directory = pathlib.Path(out_dir or self.out_dir or ".")
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"OBS_flightdump_{name}_{n:03d}.json"
        path.write_text(json.dumps(_jsonable(doc), indent=2) + "\n")
        return path

    def maybe_dump(
        self,
        name: str = "flight",
        out_dir=None,
        reason: str = "auto",
        registry: MetricsRegistry | None = None,
    ) -> pathlib.Path | None:
        """Debounced :meth:`dump`: skip if one fired too recently.

        Returns the dump path, or ``None`` when suppressed. This is the
        SLO-breach entry point — a storm of breached evaluations
        produces one bundle per debounce window, not one per rule.
        """
        now = self.clock()
        if (
            self._last_dump is not None
            and now - self._last_dump < self.debounce_seconds
        ):
            return None
        return self.dump(name, out_dir=out_dir, reason=reason, registry=registry)


#: Process-wide recorder; installed as the tracer's root sink by
#: :mod:`repro.obs` at import. Replaceable for tests via
#: :func:`set_flight_recorder`.
_RECORDER: FlightRecorder | None = None


def get_flight_recorder() -> FlightRecorder:
    """The process-wide flight recorder (created on first use)."""
    global _RECORDER
    if _RECORDER is None:
        set_flight_recorder(FlightRecorder())
    return _RECORDER


def set_flight_recorder(recorder: FlightRecorder | None) -> FlightRecorder | None:
    """Swap the process-wide recorder and re-wire the tracer root sink.

    ``None`` uninstalls (the sink included). Returns the previous
    recorder.
    """
    from . import trace

    global _RECORDER
    prev = _RECORDER
    _RECORDER = recorder
    trace.set_root_sink(None if recorder is None else recorder.record_span)
    return prev


def flight_event(name: str, **attrs: object) -> None:
    """Guarded event append: no-op while instrumentation is disabled."""
    if GATE.enabled:
        get_flight_recorder().event(name, **attrs)
