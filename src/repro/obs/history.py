"""Append-only JSONL benchmark history: the cross-PR trajectory store.

One directory (``benchmarks/history/`` by convention), one
``<bench>.jsonl`` file per bench, one JSON line per (metric, run). Lines
are only ever appended — ``bench-record`` after each landed PR grows the
trajectory, and :mod:`repro.obs.regress` reads it back to decide whether
today's run moved.

Entries are keyed by ``(bench, metric, fingerprint_key)``: the key is
the configuration digest from :func:`repro.obs.record.fingerprint_key`,
so a float32/``cluster``-backend run accumulates its own series and is
never compared against the float64 reference series (enforced in
``tests/obs/test_history.py``).
"""

from __future__ import annotations

import json
import pathlib
import time

from .record import RECORD_SCHEMA_VERSION, BenchRecord

__all__ = ["DEFAULT_HISTORY_DIR", "HistoryStore"]

#: Conventional store location, relative to the repo root.
DEFAULT_HISTORY_DIR = pathlib.Path("benchmarks") / "history"


class HistoryStore:
    """Append-only store of :class:`BenchRecord` sample series."""

    def __init__(self, root: pathlib.Path | str = DEFAULT_HISTORY_DIR) -> None:
        self.root = pathlib.Path(root)

    def _path(self, bench: str) -> pathlib.Path:
        safe = "".join(c if (c.isalnum() or c in "-_.") else "_" for c in bench)
        return self.root / f"{safe}.jsonl"

    # -- writing -------------------------------------------------------
    def append(
        self, record: BenchRecord, *, recorded_at: float | None = None
    ) -> int:
        """Append one line per metric series; returns the line count.

        Lines carry the full fingerprint (sha included) next to the
        series key, so the trajectory stays auditable: ``key`` groups,
        ``env`` explains.
        """
        if not record.series:
            return 0
        path = self._path(record.bench)
        path.parent.mkdir(parents=True, exist_ok=True)
        stamp = time.time() if recorded_at is None else float(recorded_at)
        lines = []
        for metric, series in sorted(record.series.items()):
            lines.append(
                json.dumps(
                    {
                        "schema": RECORD_SCHEMA_VERSION,
                        "bench": record.bench,
                        "metric": metric,
                        "key": record.key,
                        "env": dict(record.env),
                        "unit": series.unit,
                        "direction": series.direction,
                        "samples": [float(v) for v in series.samples],
                        "recorded_at": stamp,
                    },
                    sort_keys=True,
                )
            )
        with path.open("a") as fh:
            fh.write("\n".join(lines) + "\n")
        return len(lines)

    # -- reading -------------------------------------------------------
    def benches(self) -> list[str]:
        """Bench names with at least one history file."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.jsonl"))

    def entries(self, bench: str) -> list[dict]:
        """Every stored line of one bench, in append order.

        Malformed lines (a truncated write, a hand edit) are skipped
        rather than poisoning the whole series.
        """
        path = self._path(bench)
        if not path.exists():
            return []
        out = []
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                out.append(entry)
        return out

    def series(self, bench: str, metric: str, key: str) -> list[dict]:
        """Entries of one (bench, metric, fingerprint-key) series."""
        return [
            e
            for e in self.entries(bench)
            if e.get("metric") == metric and e.get("key") == key
        ]

    def baseline_samples(
        self, bench: str, metric: str, key: str, *, window: int = 3
    ) -> list[float]:
        """Pooled raw samples of the series' last ``window`` entries.

        Pooling several recent runs widens the baseline beyond one run's
        noise snapshot; the regression policy's thresholds assume this.
        """
        entries = self.series(bench, metric, key)[-max(window, 1):]
        pooled: list[float] = []
        for e in entries:
            pooled.extend(float(v) for v in e.get("samples", []))
        return pooled
