"""Declarative runtime SLOs evaluated against the live obs layer.

A rule is data — a name, a ``kind`` naming one of the builtin
evaluators, and a params dict — so SLO sets can live in config, tests
and CI without code changes. Evaluation reads the live
:class:`~repro.obs.metrics.MetricsRegistry` / tracer (plus whatever the
caller hands over in the :class:`SLOContext`), records every breach as a
counter (``slo.breaches`` and ``slo.breach.<rule>``) under an
``slo.evaluate`` span, and returns rows the ``slo-report`` CLI renders.

Builtin kinds:

* ``serving_deadline_miss`` — fraction of served requests whose latency
  exceeded ``deadline`` must stay <= ``max_miss_rate`` (the serving
  p99-style contract, but on the full sample set rather than one
  percentile).
* ``span_coverage`` — the named child phases must cover at least
  ``min_coverage`` of the parent phase's wall time (the paper's
  sample+forward+backward decomposition must keep explaining iteration
  time).
* ``flop_drift`` — the obs flop counters (``gemm.flops`` +
  ``spmm.flops``) must agree with the expected count (the Eq. 1-anchored
  kernel accounting; see ``tests/kernels/test_accounting.py``) within
  ``max_rel_drift`` — if the guarded dual-write path drifts from the
  always-on account, the observability layer itself is lying.
* ``histogram_p99`` — p99 of any registry histogram <= ``threshold``.
* ``per_shard_p99`` — worst per-shard p99 across every registry
  histogram matching ``prefix``/``suffix`` (the cluster's
  ``cluster.shard.<s>.latency_seconds`` family) <= ``threshold`` — one
  hot shard cannot hide behind the cluster-wide percentile.
* ``staleness_bound`` — max of a staleness histogram (age of the
  embedding slab each served result was computed from,
  ``cluster.staleness_seconds``) <= ``bound`` — the streaming-upsert
  freshness contract.
* ``roofline_fraction`` — every shape class with a tuned plan must
  achieve at least ``min_fraction`` of the throughput the tuner measured
  for it (``tuned_flops_s`` in the kernel plan table): a call site that
  runs well below its own tuned rate means the plan has gone stale for
  this workload or something is stealing the machine.

:func:`cluster_rules` bundles the two cluster rules the serve-bench
cluster mode evaluates; :func:`kernel_rules` the kernel roofline rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from . import metrics as obs_metrics
from .trace import aggregate, get_tracer, span

__all__ = [
    "SLORule",
    "SLOContext",
    "SLOResult",
    "evaluate",
    "default_rules",
    "cluster_rules",
    "kernel_rules",
    "render_slo_report",
    "register_evaluator",
]


@dataclass(frozen=True)
class SLORule:
    """One declarative rule: evaluator kind + parameters."""

    name: str
    kind: str
    params: dict = field(default_factory=dict)
    description: str = ""


@dataclass
class SLOContext:
    """Everything an evaluator may read.

    ``registry`` / ``tracer`` default to the live process-wide obs
    objects; ``serving`` is a :class:`repro.serving.metrics.ServingMetrics`
    from a replay, and ``expected_flops`` the metered kernel-accounting
    total for the same window the registry counters cover.
    """

    registry: object | None = None
    tracer: object | None = None
    serving: object | None = None
    expected_flops: float | None = None

    def get_registry(self):
        """The registry to read — explicit one, else the live global."""
        return self.registry if self.registry is not None else obs_metrics.get_registry()

    def get_tracer(self):
        """The tracer to read — explicit one, else the live global."""
        return self.tracer if self.tracer is not None else get_tracer()


@dataclass
class SLOResult:
    """One rule's outcome: measured value vs threshold."""

    rule: str
    kind: str
    value: float
    threshold: float
    ok: bool
    detail: str = ""

    def as_row(self) -> dict:
        """Report-table row with an ok/BREACH status column."""
        return {
            "rule": self.rule,
            "kind": self.kind,
            "value": self.value,
            "threshold": self.threshold,
            "status": "ok" if self.ok else "BREACH",
            "detail": self.detail,
        }


# -- builtin evaluators ------------------------------------------------

def _eval_serving_deadline_miss(rule: SLORule, ctx: SLOContext) -> SLOResult:
    deadline = float(rule.params["deadline"])
    max_rate = float(rule.params.get("max_miss_rate", 0.01))
    serving = ctx.serving
    samples = () if serving is None else tuple(serving.latency.samples)
    if not samples:
        return SLOResult(
            rule.name, rule.kind, float("nan"), max_rate, False,
            detail="no serving latency samples",
        )
    missed = sum(1 for s in samples if s > deadline)
    rate = missed / len(samples)
    return SLOResult(
        rule.name, rule.kind, rate, max_rate, rate <= max_rate,
        detail=f"{missed}/{len(samples)} past {deadline * 1e3:.2f}ms",
    )


def _eval_span_coverage(rule: SLORule, ctx: SLOContext) -> SLOResult:
    parent = str(rule.params.get("parent", "trainer.iteration"))
    children = tuple(
        rule.params.get("children", ("trainer.sample", "trainer.forward", "trainer.backward"))
    )
    min_cov = float(rule.params.get("min_coverage", 0.95))
    phases = aggregate(ctx.get_tracer().roots)
    parent_stat = phases.get(parent)
    if parent_stat is None or parent_stat.wall_seconds <= 0:
        return SLOResult(
            rule.name, rule.kind, float("nan"), min_cov, False,
            detail=f"no {parent!r} spans recorded",
        )
    covered = sum(
        phases[c].wall_seconds for c in children if c in phases
    )
    cov = covered / parent_stat.wall_seconds
    return SLOResult(
        rule.name, rule.kind, cov, min_cov, cov >= min_cov,
        detail=f"{'+'.join(children)} / {parent}",
    )


def _eval_flop_drift(rule: SLORule, ctx: SLOContext) -> SLOResult:
    max_drift = float(rule.params.get("max_rel_drift", 1e-6))
    expected = ctx.expected_flops
    if expected is None:
        expected = float(rule.params.get("expected_flops", float("nan")))
    registry = ctx.get_registry()
    measured = (
        registry.counter("gemm.flops").value + registry.counter("spmm.flops").value
    )
    if expected != expected or expected <= 0:
        return SLOResult(
            rule.name, rule.kind, float("nan"), max_drift, False,
            detail="no expected flop count supplied",
        )
    drift = abs(measured - expected) / expected
    return SLOResult(
        rule.name, rule.kind, drift, max_drift, drift <= max_drift,
        detail=f"measured {measured:.3e} vs expected {expected:.3e}",
    )


def _eval_histogram_p99(rule: SLORule, ctx: SLOContext) -> SLOResult:
    metric = str(rule.params["metric"])
    threshold = float(rule.params["threshold"])
    hist = ctx.get_registry().histograms.get(metric)
    if hist is None or not len(hist):
        return SLOResult(
            rule.name, rule.kind, float("nan"), threshold, False,
            detail=f"no samples under {metric!r}",
        )
    p99 = hist.percentile(99)
    return SLOResult(
        rule.name, rule.kind, p99, threshold, p99 <= threshold,
        detail=f"p99 of {metric} ({len(hist)} samples)",
    )


def _eval_per_shard_p99(rule: SLORule, ctx: SLOContext) -> SLOResult:
    prefix = str(rule.params.get("prefix", "cluster.shard."))
    suffix = str(rule.params.get("suffix", ".latency_seconds"))
    threshold = float(rule.params["threshold"])
    registry = ctx.get_registry()
    matching = {
        name: hist
        for name, hist in registry.histograms.items()
        if name.startswith(prefix) and name.endswith(suffix) and len(hist)
    }
    if not matching:
        return SLOResult(
            rule.name, rule.kind, float("nan"), threshold, False,
            detail=f"no histograms matching {prefix}*{suffix}",
        )
    worst_name, worst = max(
        matching.items(), key=lambda kv: kv[1].percentile(99)
    )
    p99 = worst.percentile(99)
    return SLOResult(
        rule.name, rule.kind, p99, threshold, p99 <= threshold,
        detail=f"worst of {len(matching)} shards: {worst_name}",
    )


def _eval_staleness_bound(rule: SLORule, ctx: SLOContext) -> SLOResult:
    metric = str(rule.params.get("metric", "cluster.staleness_seconds"))
    bound = float(rule.params["bound"])
    hist = ctx.get_registry().histograms.get(metric)
    if hist is None or not len(hist):
        return SLOResult(
            rule.name, rule.kind, float("nan"), bound, False,
            detail=f"no samples under {metric!r}",
        )
    worst = hist.max()
    return SLOResult(
        rule.name, rule.kind, worst, bound, worst <= bound,
        detail=f"max slab age over {len(hist)} served sub-requests",
    )


def _eval_roofline_fraction(rule: SLORule, ctx: SLOContext) -> SLOResult:
    # Lazy import: obs must stay importable without the kernel layer
    # loaded (and kernels imports obs at module level).
    from ..kernels import accounting as kernel_accounting
    from ..kernels import autotune as kernel_autotune

    min_fraction = float(rule.params.get("min_fraction", 0.5))
    entries = rule.params.get("plan_entries")
    if entries is None:
        entries = kernel_autotune.get_plan_cache().tuned_entries()
    per_class = rule.params.get("per_class")
    if per_class is None:
        per_class = kernel_accounting.per_class_snapshot()
    worst = float("inf")
    worst_key = None
    covered = 0
    for key, entry in entries.items():
        tuned = float(entry["tuned_flops_s"])
        bucket = per_class.get(key)
        if bucket is None or bucket["seconds"] <= 0 or tuned <= 0:
            continue
        covered += 1
        achieved = bucket["flops"] / bucket["seconds"]
        fraction = achieved / tuned
        if fraction < worst:
            worst, worst_key = fraction, key
    if worst_key is None:
        return SLOResult(
            rule.name, rule.kind, float("nan"), min_fraction, False,
            detail="no accounted shape class has a tuned plan",
        )
    return SLOResult(
        rule.name, rule.kind, worst, min_fraction, worst >= min_fraction,
        detail=f"worst of {covered} tuned classes: {worst_key}",
    )


_EVALUATORS: dict[str, Callable[[SLORule, SLOContext], SLOResult]] = {
    "serving_deadline_miss": _eval_serving_deadline_miss,
    "span_coverage": _eval_span_coverage,
    "flop_drift": _eval_flop_drift,
    "histogram_p99": _eval_histogram_p99,
    "per_shard_p99": _eval_per_shard_p99,
    "staleness_bound": _eval_staleness_bound,
    "roofline_fraction": _eval_roofline_fraction,
}


def register_evaluator(
    kind: str, fn: Callable[[SLORule, SLOContext], SLOResult], *, overwrite: bool = False
) -> None:
    """Add a custom rule kind (subsystems can bring their own SLOs)."""
    if kind in _EVALUATORS and not overwrite:
        raise ValueError(f"SLO evaluator {kind!r} already registered")
    _EVALUATORS[kind] = fn


def evaluate(rules, ctx: SLOContext | None = None) -> list[SLOResult]:
    """Evaluate every rule; record breaches as counters under a span.

    Breach counters are written directly to the context's registry
    (bypassing the kill-switch guards): an SLO evaluation is an explicit
    request for telemetry, not hot-path instrumentation.

    Any breach additionally triggers a **debounced flight dump** (see
    :mod:`repro.obs.flight`): the recorder's recent spans, events and
    counter movement are bundled to disk the moment a rule goes red, so
    the requests that caused the breach are captured before the buffers
    roll over. The dump is best-effort — a recorder failure never turns
    an SLO report into a crash.
    """
    ctx = ctx or SLOContext()
    registry = ctx.get_registry()
    results: list[SLOResult] = []
    with span("slo.evaluate") as sp:
        for rule in rules:
            fn = _EVALUATORS.get(rule.kind)
            if fn is None:
                raise ValueError(f"unknown SLO rule kind {rule.kind!r}")
            result = fn(rule, ctx)
            results.append(result)
            registry.counter("slo.evaluated").add()
            if not result.ok:
                registry.counter("slo.breaches").add()
                registry.counter(f"slo.breach.{result.rule}").add()
        breaches = sum(1 for r in results if not r.ok)
        sp.set(rules=len(results), breaches=breaches)
    if breaches:
        from .flight import get_flight_recorder

        breached = ",".join(r.rule for r in results if not r.ok)
        try:
            path = get_flight_recorder().maybe_dump(
                "slo_breach", reason=f"slo breach: {breached}", registry=registry
            )
        except OSError:
            path = None
        if path is not None:
            registry.counter("slo.flight_dumps").add()
    return results


def default_rules(
    *,
    deadline: float = 0.050,
    max_miss_rate: float = 0.05,
    min_coverage: float = 0.95,
    max_flop_drift: float = 1e-6,
) -> list[SLORule]:
    """The repo's standing SLO set (what ``slo-report`` evaluates)."""
    return [
        SLORule(
            name="serving-deadline-miss",
            kind="serving_deadline_miss",
            params={"deadline": deadline, "max_miss_rate": max_miss_rate},
            description="served latency may miss the deadline only rarely",
        ),
        SLORule(
            name="iteration-span-coverage",
            kind="span_coverage",
            params={
                "parent": "trainer.iteration",
                "children": ("trainer.sample", "trainer.forward", "trainer.backward"),
                "min_coverage": min_coverage,
            },
            description="sample+forward+backward must explain iteration time",
        ),
        SLORule(
            name="flop-account-drift",
            kind="flop_drift",
            params={"max_rel_drift": max_flop_drift},
            description="obs flop counters must match the Eq. 1-anchored account",
        ),
    ]


def cluster_rules(
    *,
    per_shard_p99: float = 0.100,
    staleness_bound: float = 5.0,
) -> list[SLORule]:
    """The sharded-serving SLO set (what serve-bench --cluster gates on).

    ``per_shard_p99`` caps the p99 sub-request latency of the *worst*
    shard; ``staleness_bound`` caps the age (seconds on the replay
    clock) of the embedding slab behind any served result — the
    contract streaming upserts must keep while queries are in flight.
    """
    return [
        SLORule(
            name="cluster-per-shard-p99",
            kind="per_shard_p99",
            params={"threshold": per_shard_p99},
            description="every shard's sub-request p99 stays under the cap",
        ),
        SLORule(
            name="cluster-staleness-bound",
            kind="staleness_bound",
            params={"bound": staleness_bound},
            description="no served result computed from a slab older than the bound",
        ),
    ]


def kernel_rules(*, min_fraction: float = 0.5) -> list[SLORule]:
    """The kernel-dispatch SLO set (what ``roofline-report`` evaluates).

    Flags any accounted shape class running below ``min_fraction`` of
    the throughput its autotuned plan measured at tune time.
    """
    return [
        SLORule(
            name="kernel-roofline-fraction",
            kind="roofline_fraction",
            params={"min_fraction": min_fraction},
            description="call sites stay near their tuned throughput",
        ),
    ]


def render_slo_report(results: list[SLOResult], *, title: str = "SLO report") -> str:
    """Fixed-width report table plus a one-line verdict."""
    from ..experiments.common import format_table

    if not results:
        return f"{title}\n(no rules evaluated)"
    table = format_table([r.as_row() for r in results], title=title)
    breaches = [r.rule for r in results if not r.ok]
    verdict = (
        "all SLOs met"
        if not breaches
        else f"{len(breaches)} breach(es): {', '.join(breaches)}"
    )
    return f"{table}\n\n{verdict}"
