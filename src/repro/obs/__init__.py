"""repro.obs — the cross-cutting observability layer.

The paper's headline claims are performance claims (Fig. 2
time-to-accuracy, Fig. 3/4 scaling); this package is how the repo sees
where time actually goes. One span/counter vocabulary shared by every
subsystem:

* :mod:`repro.obs.trace` — hierarchical spans recording wall time,
  cost-model (simulated) time and arbitrary attributes, on an injectable
  clock so traces are deterministic in tests;
* :mod:`repro.obs.metrics` — process-wide counters / gauges / exact-
  percentile histograms (subsumes ``repro.serving.metrics``'s
  :class:`~repro.obs.metrics.LatencyHistogram`);
* :mod:`repro.obs.export` — JSON trace documents, Chrome
  ``trace_event`` files, and the flat ``OBS_<name>.json`` summaries that
  sit next to the bench harness's ``BENCH_<name>.json``;
* :mod:`repro.obs.context` — request-scoped tracing: per-request span
  trees (admission → batch → shard fan-out → hedged duplicates) that
  make individual tail requests reconstructable by id;
* :mod:`repro.obs.flight` — the flight recorder: ring buffers of recent
  root spans and events, dumped to ``OBS_flightdump_*.json`` on SLO
  breach (debounced) or on demand.

Everything is **off by default** and costs one attribute read per call
site when disabled (see :mod:`repro.obs._gate`); enable it with::

    from repro import obs

    with obs.enabled():
        trainer.train(epochs=1)
    print(obs.export.render_report(obs.export.trace_document("run")))

or from the command line::

    python -m repro.cli train-bench --out results/
    python -m repro.cli obs-report --trace results/OBS_train_bench.json

See ``docs/observability.md`` for the full guide.
"""

from . import context, export, flight, history, metrics, record, regress, slo
from ._gate import enabled, is_enabled, set_enabled
from .context import RequestContext
from .flight import FlightRecorder, flight_event, get_flight_recorder
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LatencyHistogram,
    MetricsRegistry,
    get_registry,
)
from .trace import (
    PhaseStat,
    Span,
    Tracer,
    aggregate,
    current_span,
    get_tracer,
    set_tracer,
    span,
    walk,
)

__all__ = [
    "enabled",
    "is_enabled",
    "set_enabled",
    "span",
    "current_span",
    "Span",
    "Tracer",
    "PhaseStat",
    "aggregate",
    "walk",
    "get_tracer",
    "set_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "get_registry",
    "metrics",
    "export",
    "record",
    "history",
    "regress",
    "slo",
    "context",
    "flight",
    "RequestContext",
    "FlightRecorder",
    "flight_event",
    "get_flight_recorder",
    "reset",
]

# The flight recorder rides the tracer's root sink from the start, so
# "always on" holds without any subsystem opting in.
flight.get_flight_recorder()


def reset() -> None:
    """Clear the tracer, the metrics registry, request-id counters and
    the flight recorder's buffers.

    Bench runners call this before each workload so one process can
    export several independent ``OBS_*.json`` files with reproducible
    request ids.
    """
    from . import trace as _trace

    _trace.reset()
    metrics.reset()
    context.reset_ids()
    flight.get_flight_recorder().clear()
