"""Statistical change detection between a bench run and its history.

Timing distributions are skewed and noisy; a mean-vs-mean comparison
either misses real regressions or cries wolf. The gate therefore
requires **three** independent signals to call a change:

1. **Mann–Whitney U** (two-sided, normal approximation with tie and
   continuity correction) — are the two sample sets drawn from the same
   distribution at all?
2. **Median ratio** — is the shift big enough to matter? Changes inside
   the configurable noise threshold are reported ``unchanged`` no matter
   how significant.
3. **Bootstrap CI on the median ratio** — does the uncertainty interval
   itself clear the noise band, not just the point estimate?

Only when all three agree is the verdict ``regressed`` (or
``improved``); anything else is ``unchanged``, and too-small sample sets
are ``insufficient-data``. The conjunction is what keeps the
false-positive rate negligible across repeated CI runs (pinned by the
seeded sweep in ``tests/obs/test_regress.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "VERDICT_IMPROVED",
    "VERDICT_UNCHANGED",
    "VERDICT_REGRESSED",
    "VERDICT_INSUFFICIENT",
    "RegressionPolicy",
    "Comparison",
    "mann_whitney_u",
    "bootstrap_median_ratio_ci",
    "compare",
    "diff_against_history",
    "render_diff",
    "worst_verdict",
]

VERDICT_IMPROVED = "improved"
VERDICT_UNCHANGED = "unchanged"
VERDICT_REGRESSED = "regressed"
VERDICT_INSUFFICIENT = "insufficient-data"


@dataclass(frozen=True)
class RegressionPolicy:
    """Gate configuration: sample floors, significance, noise band."""

    min_samples: int = 4  # fewer on either side -> insufficient-data
    alpha: float = 0.01  # Mann-Whitney two-sided significance
    noise_threshold: float = 0.10  # |median ratio - 1| below this is noise
    bootstrap_iters: int = 800
    bootstrap_seed: int = 0
    bootstrap_alpha: float = 0.05  # 95% CI on the median ratio
    baseline_window: int = 3  # history entries pooled into the baseline


def _rankdata(x: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties sharing their mean rank."""
    order = np.argsort(x, kind="mergesort")
    ranks = np.empty(x.size, dtype=np.float64)
    sx = x[order]
    i = 0
    while i < x.size:
        j = i
        while j + 1 < x.size and sx[j + 1] == sx[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def _exact_u_cdf(n1: int, n2: int, u: int) -> float:
    """P(U <= u) under the exact tie-free null distribution.

    Counts, for every achievable statistic value, the number of
    interleavings of ``n1`` + ``n2`` tie-free samples producing it
    (classic DP over the partition-count recurrence). Only used for the
    small sample counts the bench gate sees, where the normal
    approximation is too coarse to ever clear a strict alpha.
    """
    size = n1 * n2 + 1
    # Mann & Whitney's recurrence f(m,n,u) = f(m-1,n,u-n) + f(m,n-1,u),
    # rolled over m with one counts array per n.
    counts = [np.zeros(size, dtype=np.float64) for _ in range(n2 + 1)]
    for n in range(n2 + 1):
        counts[n][0] = 1.0
    for _m in range(1, n1 + 1):
        new = [np.zeros(size, dtype=np.float64) for _ in range(n2 + 1)]
        new[0][0] = 1.0
        for n in range(1, n2 + 1):
            shifted = np.zeros(size, dtype=np.float64)
            shifted[n:] = counts[n][: size - n]
            new[n] = new[n - 1] + shifted
        counts = new
    dist = counts[n2]
    return float(dist[: int(u) + 1].sum() / dist.sum())


def mann_whitney_u(x, y) -> tuple[float, float]:
    """Two-sided Mann–Whitney U test of ``x`` vs ``y``.

    Returns ``(U_x, p)``. Tie-free samples up to ``n1 * n2 <= 2500`` get
    the exact null distribution (at gate-scale counts like 5-vs-5 the
    normal approximation cannot reach small p-values even under full
    separation); larger or tied samples use the normal approximation
    with tie correction and a 0.5 continuity correction. No scipy
    dependency on this import path. Identical constant samples give
    p = 1.0.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n1, n2 = x.size, y.size
    if n1 == 0 or n2 == 0:
        raise ValueError("mann_whitney_u needs non-empty samples")
    both = np.concatenate([x, y])
    ranks = _rankdata(both)
    u1 = float(ranks[:n1].sum() - n1 * (n1 + 1) / 2.0)
    u2 = n1 * n2 - u1
    _, counts = np.unique(both, return_counts=True)
    has_ties = counts.size < both.size
    if not has_ties and n1 * n2 <= 2500:
        # Exact two-sided p: twice the one-sided tail of min(U1, U2).
        p = 2.0 * _exact_u_cdf(n1, n2, int(round(min(u1, u2))))
        return u1, min(p, 1.0)
    mu = n1 * n2 / 2.0
    tie_term = float(((counts**3 - counts)).sum())
    n = n1 + n2
    var = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if var <= 0:
        return u1, 1.0
    z = (abs(u1 - mu) - 0.5) / math.sqrt(var)
    z = max(z, 0.0)
    p = 2.0 * 0.5 * math.erfc(z / math.sqrt(2.0))
    return u1, min(max(p, 0.0), 1.0)


def bootstrap_median_ratio_ci(
    current,
    baseline,
    *,
    iters: int = 800,
    seed: int = 0,
    alpha: float = 0.05,
) -> tuple[float, float]:
    """Percentile bootstrap CI on ``median(current) / median(baseline)``.

    Both sides are resampled with replacement; a degenerate zero
    baseline median is floored at a tiny epsilon so the ratio stays
    finite.
    """
    cur = np.asarray(current, dtype=np.float64)
    base = np.asarray(baseline, dtype=np.float64)
    rng = np.random.default_rng(seed)
    eps = 1e-300
    ratios = np.empty(iters, dtype=np.float64)
    for i in range(iters):
        mc = np.median(rng.choice(cur, size=cur.size, replace=True))
        mb = np.median(rng.choice(base, size=base.size, replace=True))
        ratios[i] = mc / max(mb, eps)
    lo = float(np.quantile(ratios, alpha / 2.0))
    hi = float(np.quantile(ratios, 1.0 - alpha / 2.0))
    return lo, hi


@dataclass
class Comparison:
    """One metric's verdict plus the evidence behind it."""

    bench: str
    metric: str
    verdict: str
    n_current: int
    n_baseline: int
    median_current: float = float("nan")
    median_baseline: float = float("nan")
    ratio: float = float("nan")
    ci_low: float = float("nan")
    ci_high: float = float("nan")
    p_value: float = float("nan")
    direction: str = "lower"

    def as_row(self) -> dict:
        """Diff-table row (medians in native units, ratio unitless)."""
        return {
            "bench": self.bench,
            "metric": self.metric,
            "n_cur": self.n_current,
            "n_base": self.n_baseline,
            "median_cur": self.median_current,
            "median_base": self.median_baseline,
            "ratio": self.ratio,
            "ci95": f"[{self.ci_low:.3f}, {self.ci_high:.3f}]"
            if self.ci_low == self.ci_low
            else "-",
            "p": self.p_value,
            "verdict": self.verdict,
        }


def compare(
    current,
    baseline,
    *,
    policy: RegressionPolicy | None = None,
    direction: str = "lower",
    bench: str = "",
    metric: str = "",
) -> Comparison:
    """Classify ``current`` against ``baseline`` samples (see module doc).

    ``direction`` is which way is *better* for the metric: ``"lower"``
    (times) or ``"higher"`` (throughput). A ratio above the noise band
    is a regression for lower-better metrics and an improvement for
    higher-better ones.
    """
    policy = policy or RegressionPolicy()
    cur = np.asarray(list(current), dtype=np.float64)
    base = np.asarray(list(baseline), dtype=np.float64)
    result = Comparison(
        bench=bench,
        metric=metric,
        verdict=VERDICT_INSUFFICIENT,
        n_current=int(cur.size),
        n_baseline=int(base.size),
        direction=direction,
    )
    if cur.size < policy.min_samples or base.size < policy.min_samples:
        return result
    med_cur = float(np.median(cur))
    med_base = float(np.median(base))
    ratio = med_cur / max(abs(med_base), 1e-300) if med_base >= 0 else float("nan")
    _, p = mann_whitney_u(cur, base)
    ci_lo, ci_hi = bootstrap_median_ratio_ci(
        cur,
        base,
        iters=policy.bootstrap_iters,
        seed=policy.bootstrap_seed,
        alpha=policy.bootstrap_alpha,
    )
    result.median_current = med_cur
    result.median_baseline = med_base
    result.ratio = ratio
    result.ci_low = ci_lo
    result.ci_high = ci_hi
    result.p_value = p

    up = 1.0 + policy.noise_threshold  # shifted up past the noise band
    dn = 1.0 - policy.noise_threshold
    half_up = 1.0 + policy.noise_threshold / 2.0
    half_dn = 1.0 - policy.noise_threshold / 2.0
    significant = p < policy.alpha
    shifted_up = ratio >= up and ci_lo > half_up
    shifted_dn = ratio <= dn and ci_hi < half_dn
    if significant and shifted_up:
        result.verdict = (
            VERDICT_REGRESSED if direction == "lower" else VERDICT_IMPROVED
        )
    elif significant and shifted_dn:
        result.verdict = (
            VERDICT_IMPROVED if direction == "lower" else VERDICT_REGRESSED
        )
    else:
        result.verdict = VERDICT_UNCHANGED
    return result


def diff_against_history(
    records,
    store,
    *,
    policy: RegressionPolicy | None = None,
) -> list[Comparison]:
    """Compare every record series against its own history series.

    Series with ``direction == "none"`` are informational and skipped;
    a series whose (bench, metric, key) has no history yet comes back
    ``insufficient-data`` — the first recorded run seeds the baseline,
    it cannot gate.
    """
    policy = policy or RegressionPolicy()
    out: list[Comparison] = []
    for record in records:
        for metric, series in sorted(record.series.items()):
            if series.direction == "none":
                continue
            baseline = store.baseline_samples(
                record.bench, metric, record.key, window=policy.baseline_window
            )
            out.append(
                compare(
                    series.samples,
                    baseline,
                    policy=policy,
                    direction=series.direction,
                    bench=record.bench,
                    metric=metric,
                )
            )
    return out


def render_diff(comparisons: list[Comparison], *, title: str = "bench diff") -> str:
    """Human-readable diff table of every comparison."""
    from ..experiments.common import format_table

    if not comparisons:
        return f"{title}\n(no comparable series)"
    return format_table([c.as_row() for c in comparisons], title=title)


_SEVERITY = {
    VERDICT_UNCHANGED: 0,
    VERDICT_IMPROVED: 0,
    VERDICT_INSUFFICIENT: 1,
    VERDICT_REGRESSED: 2,
}


def worst_verdict(comparisons: list[Comparison]) -> str:
    """Overall gate verdict: ``regressed`` dominates, then
    ``insufficient-data``, else ``unchanged``."""
    if not comparisons:
        return VERDICT_INSUFFICIENT
    worst = max(comparisons, key=lambda c: _SEVERITY.get(c.verdict, 0))
    if _SEVERITY.get(worst.verdict, 0) == 2:
        return VERDICT_REGRESSED
    if all(c.verdict == VERDICT_INSUFFICIENT for c in comparisons):
        return VERDICT_INSUFFICIENT
    return VERDICT_UNCHANGED
