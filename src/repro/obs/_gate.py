"""The observability kill switch.

Instrumentation is **off by default**: the hot paths (trainer iterations,
Dashboard pops, SpMM chunks) are the very code the ROADMAP promises to
keep "as fast as the hardware allows", so recording must cost nothing
unless explicitly requested. Every span/counter entry point checks
``GATE.enabled`` — a single attribute read — and short-circuits to a
shared no-op when it is ``False``. The disabled path allocates nothing
(see ``tests/obs/test_overhead.py`` for the enforced guarantees).

The flag lives in its own tiny module so that :mod:`repro.obs.trace` and
:mod:`repro.obs.metrics` can share it without importing each other.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["GATE", "is_enabled", "set_enabled", "enabled"]


class _Gate:
    """Mutable holder for the process-wide enable flag."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


GATE = _Gate()


def is_enabled() -> bool:
    """True when instrumentation is recording."""
    return GATE.enabled


def set_enabled(on: bool) -> None:
    """Turn instrumentation on or off process-wide."""
    GATE.enabled = bool(on)


@contextmanager
def enabled(on: bool = True):
    """Scoped enable/disable; restores the previous state on exit.

    The bench harness and tests use this so a failing assertion never
    leaves instrumentation switched on for unrelated code::

        with obs.enabled():
            trainer.train(epochs=1)
    """
    prev = GATE.enabled
    GATE.enabled = bool(on)
    try:
        yield
    finally:
        GATE.enabled = prev
