"""Hierarchical spans: the "where does the time go" half of ``repro.obs``.

A span is one timed region of code with a name, wall-clock start/end, an
optional *simulated-time* charge (the cost-model clock the paper's scaling
figures run on), and arbitrary key-value attributes::

    from repro import obs

    with obs.span("sampler.frontier") as sp:
        subgraph = sampler.sample(rng)
        sp.set(vertices=subgraph.num_vertices)

Spans nest: a span opened while another is active becomes its child, so a
trainer iteration produces a tree (iteration → forward → prop.forward → …)
that exports cleanly to Chrome ``trace_event`` JSON (see
:mod:`repro.obs.export`).

Three properties keep this usable on hot paths:

* **Kill switch** — when :func:`repro.obs.is_enabled` is ``False`` (the
  default), :func:`span` returns a shared no-op singleton: no object is
  allocated and no clock is read.
* **Deterministic clock** — a :class:`Tracer` takes any ``clock``
  callable. Tests inject a counter clock so span durations (and therefore
  exported traces) are exactly reproducible.
* **Thread safety** — the open-span stack is *thread-local* (a span
  opened on a prefetch worker can never parent under whatever span the
  consumer thread has open), roots are appended under a lock, and every
  span records the ident of the thread that opened it so the Chrome
  exporter can draw per-thread lanes.

Completed *root* spans are additionally offered to a pluggable sink
(:func:`set_root_sink`) — how the flight recorder
(:mod:`repro.obs.flight`) sees finished span trees without the tracer
importing it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ._gate import GATE

__all__ = [
    "Span",
    "Tracer",
    "PhaseStat",
    "span",
    "current_span",
    "get_tracer",
    "set_tracer",
    "set_root_sink",
    "reset",
    "aggregate",
    "walk",
]


class Span:
    """One timed region; also its own context manager.

    Attributes are plain instance fields (``__slots__``) so entering a
    span costs one object plus two clock reads. ``tid`` is the ident of
    the opening thread (``None`` for spans built with explicit times,
    e.g. the virtual-clock request spans of
    :mod:`repro.obs.context`).
    """

    __slots__ = (
        "name", "t_start", "t_end", "sim_time", "attrs", "children",
        "_tracer", "tid",
    )

    def __init__(
        self,
        name: str,
        t_start: float,
        tracer: "Tracer | None",
        tid: int | None = None,
    ) -> None:
        self.name = name
        self.t_start = t_start
        self.t_end: float | None = None
        self.sim_time = 0.0
        self.attrs: dict[str, object] = {}
        self.children: list[Span] = []
        self._tracer = tracer
        self.tid = tid

    # -- recording -----------------------------------------------------
    def set(self, **attrs: object) -> "Span":
        """Attach attributes (vertex counts, q, batch size, …)."""
        self.attrs.update(attrs)
        return self

    def add_sim_time(self, dt: float) -> None:
        """Charge ``dt`` cost-model seconds to this span."""
        self.sim_time += dt

    # -- context manager -----------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if self._tracer is not None:
            self._tracer._finish(self)

    # -- derived quantities --------------------------------------------
    @property
    def duration(self) -> float:
        """Wall seconds between enter and exit (0.0 while still open)."""
        return 0.0 if self.t_end is None else self.t_end - self.t_start

    @property
    def self_seconds(self) -> float:
        """Duration minus the time spent inside child spans."""
        return self.duration - sum(c.duration for c in self.children)

    def total_sim_time(self) -> float:
        """Simulated time charged to this span and all descendants."""
        return self.sim_time + sum(c.total_sim_time() for c in self.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, dur={self.duration:.6f}, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """Shared do-nothing span returned while instrumentation is off."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NoopSpan":
        return self

    def add_sim_time(self, dt: float) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = _NoopSpan()

#: Completed-root sink (installed by :mod:`repro.obs.flight`); called
#: with each root span the moment it finishes. Process-wide on purpose:
#: the flight recorder should see roots from every tracer.
_ROOT_SINK = None


def set_root_sink(sink) -> None:
    """Install ``sink(span)`` to observe completed root spans.

    ``None`` uninstalls. The sink runs on whatever thread finished the
    root, so it must be thread-safe (the flight recorder's ring buffer
    appends are).
    """
    global _ROOT_SINK
    _ROOT_SINK = sink


class Tracer:
    """Collects a forest of spans on one injected clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning monotonically non-decreasing
        floats; defaults to :func:`time.perf_counter`. Tests pass a
        deterministic counter so recorded durations are exact.

    The open-span stack is kept per thread (``threading.local``): a span
    opened by a prefetch worker becomes its own root (or a child of that
    *worker's* open span), never a child of the consumer thread's stack.
    ``roots`` is shared across threads and appended under a lock.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self.clock = clock
        self.roots: list[Span] = []
        self._local = threading.local()
        self._roots_lock = threading.Lock()

    @property
    def _stack(self) -> list[Span]:
        """This thread's open-span stack (created on first touch)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: object) -> Span:
        """Open a span as a child of this thread's active span."""
        sp = Span(name, self.clock(), self, tid=threading.get_ident())
        if attrs:
            sp.attrs.update(attrs)
        stack = self._stack
        if stack:
            stack[-1].children.append(sp)
        else:
            with self._roots_lock:
                self.roots.append(sp)
        stack.append(sp)
        return sp

    def add_root(self, sp: Span) -> Span:
        """Attach an externally-built (finished) span tree as a root.

        The request-scoped virtual-clock traces of
        :mod:`repro.obs.context` land here: they are constructed with
        explicit timestamps rather than through the stack, but export,
        aggregation and the flight recorder treat them like any other
        root.
        """
        with self._roots_lock:
            self.roots.append(sp)
        if _ROOT_SINK is not None and sp.t_end is not None:
            _ROOT_SINK(sp)
        return sp

    def _finish(self, sp: Span) -> None:
        sp.t_end = self.clock()
        # Tolerate out-of-order exits (e.g. a span leaked across an
        # exception the caller swallowed): unwind to the finished span,
        # marking every silently-closed parent as leaked.
        stack = self._stack
        leaked = 0
        while stack:
            top = stack.pop()
            if top is sp:
                break
            if top.t_end is None:
                top.t_end = sp.t_end
                top.attrs["leaked"] = True
                leaked += 1
        if leaked:
            # Guarded write: Tracer is also used standalone in tests with
            # the gate off, and the disabled path must record nothing.
            from . import metrics as obs_metrics

            obs_metrics.inc("obs.spans.leaked", leaked)
        if not stack and _ROOT_SINK is not None:
            _ROOT_SINK(sp)

    def current(self) -> Span | None:
        """This thread's innermost open span, or None outside any span."""
        stack = self._stack
        return stack[-1] if stack else None

    def reset(self) -> None:
        """Drop all recorded spans (this thread's open ones included)."""
        with self._roots_lock:
            self.roots.clear()
        self._stack.clear()


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer that :func:`span` records into."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer (returns the previous one)."""
    global _TRACER
    prev = _TRACER
    _TRACER = tracer
    return prev


def span(name: str, **attrs: object):
    """Open a span on the global tracer; no-op when disabled.

    The disabled path performs one attribute read and returns a shared
    singleton — it never allocates, so leaving instrumentation compiled
    into hot loops is free (enforced by ``tests/obs/test_overhead.py``).
    """
    if not GATE.enabled:
        return NOOP_SPAN
    return _TRACER.span(name, **attrs)


def current_span() -> Span | None:
    """Innermost open span of the global tracer (None when disabled)."""
    if not GATE.enabled:
        return None
    return _TRACER.current()


def reset() -> None:
    """Clear the global tracer's recorded spans."""
    _TRACER.reset()


def walk(sp: Span):
    """Yield ``sp`` and all descendants, depth-first, parents first."""
    yield sp
    for child in sp.children:
        yield from walk(child)


@dataclass
class PhaseStat:
    """Aggregated view of every span sharing one name."""

    name: str
    count: int = 0
    wall_seconds: float = 0.0
    self_seconds: float = 0.0
    sim_time: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-ready form (all values as floats)."""
        return {
            "count": float(self.count),
            "wall_seconds": self.wall_seconds,
            "self_seconds": self.self_seconds,
            "sim_time": self.sim_time,
        }


def aggregate(spans) -> dict[str, PhaseStat]:
    """Per-name totals over a span forest, in first-seen order.

    ``wall_seconds`` sums full durations (a child's time is also inside
    its parent's total — the tree view); ``self_seconds`` sums time not
    attributed to any child span, so self times sum to total traced time
    without double counting.
    """
    out: dict[str, PhaseStat] = {}
    for root in spans:
        for sp in walk(root):
            stat = out.get(sp.name)
            if stat is None:
                stat = out[sp.name] = PhaseStat(sp.name)
            stat.count += 1
            stat.wall_seconds += sp.duration
            stat.self_seconds += sp.self_seconds
            stat.sim_time += sp.sim_time
    return out
