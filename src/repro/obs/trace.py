"""Hierarchical spans: the "where does the time go" half of ``repro.obs``.

A span is one timed region of code with a name, wall-clock start/end, an
optional *simulated-time* charge (the cost-model clock the paper's scaling
figures run on), and arbitrary key-value attributes::

    from repro import obs

    with obs.span("sampler.frontier") as sp:
        subgraph = sampler.sample(rng)
        sp.set(vertices=subgraph.num_vertices)

Spans nest: a span opened while another is active becomes its child, so a
trainer iteration produces a tree (iteration → forward → prop.forward → …)
that exports cleanly to Chrome ``trace_event`` JSON (see
:mod:`repro.obs.export`).

Two properties keep this usable on hot paths:

* **Kill switch** — when :func:`repro.obs.is_enabled` is ``False`` (the
  default), :func:`span` returns a shared no-op singleton: no object is
  allocated and no clock is read.
* **Deterministic clock** — a :class:`Tracer` takes any ``clock``
  callable. Tests inject a counter clock so span durations (and therefore
  exported traces) are exactly reproducible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ._gate import GATE

__all__ = [
    "Span",
    "Tracer",
    "PhaseStat",
    "span",
    "current_span",
    "get_tracer",
    "set_tracer",
    "reset",
    "aggregate",
    "walk",
]


class Span:
    """One timed region; also its own context manager.

    Attributes are plain instance fields (``__slots__``) so entering a
    span costs one object plus two clock reads.
    """

    __slots__ = ("name", "t_start", "t_end", "sim_time", "attrs", "children", "_tracer")

    def __init__(self, name: str, t_start: float, tracer: "Tracer | None") -> None:
        self.name = name
        self.t_start = t_start
        self.t_end: float | None = None
        self.sim_time = 0.0
        self.attrs: dict[str, object] = {}
        self.children: list[Span] = []
        self._tracer = tracer

    # -- recording -----------------------------------------------------
    def set(self, **attrs: object) -> "Span":
        """Attach attributes (vertex counts, q, batch size, …)."""
        self.attrs.update(attrs)
        return self

    def add_sim_time(self, dt: float) -> None:
        """Charge ``dt`` cost-model seconds to this span."""
        self.sim_time += dt

    # -- context manager -----------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if self._tracer is not None:
            self._tracer._finish(self)

    # -- derived quantities --------------------------------------------
    @property
    def duration(self) -> float:
        """Wall seconds between enter and exit (0.0 while still open)."""
        return 0.0 if self.t_end is None else self.t_end - self.t_start

    @property
    def self_seconds(self) -> float:
        """Duration minus the time spent inside child spans."""
        return self.duration - sum(c.duration for c in self.children)

    def total_sim_time(self) -> float:
        """Simulated time charged to this span and all descendants."""
        return self.sim_time + sum(c.total_sim_time() for c in self.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, dur={self.duration:.6f}, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """Shared do-nothing span returned while instrumentation is off."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NoopSpan":
        return self

    def add_sim_time(self, dt: float) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects a forest of spans on one injected clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning monotonically non-decreasing
        floats; defaults to :func:`time.perf_counter`. Tests pass a
        deterministic counter so recorded durations are exact.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self.clock = clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attrs: object) -> Span:
        """Open a span as a child of the currently-active span."""
        sp = Span(name, self.clock(), self)
        if attrs:
            sp.attrs.update(attrs)
        if self._stack:
            self._stack[-1].children.append(sp)
        else:
            self.roots.append(sp)
        self._stack.append(sp)
        return sp

    def _finish(self, sp: Span) -> None:
        sp.t_end = self.clock()
        # Tolerate out-of-order exits (e.g. a span leaked across an
        # exception the caller swallowed): unwind to the finished span.
        while self._stack:
            top = self._stack.pop()
            if top is sp:
                break
            if top.t_end is None:
                top.t_end = sp.t_end

    def current(self) -> Span | None:
        """Innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        """Drop all recorded spans (open ones included)."""
        self.roots.clear()
        self._stack.clear()


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer that :func:`span` records into."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer (returns the previous one)."""
    global _TRACER
    prev = _TRACER
    _TRACER = tracer
    return prev


def span(name: str, **attrs: object):
    """Open a span on the global tracer; no-op when disabled.

    The disabled path performs one attribute read and returns a shared
    singleton — it never allocates, so leaving instrumentation compiled
    into hot loops is free (enforced by ``tests/obs/test_overhead.py``).
    """
    if not GATE.enabled:
        return NOOP_SPAN
    return _TRACER.span(name, **attrs)


def current_span() -> Span | None:
    """Innermost open span of the global tracer (None when disabled)."""
    if not GATE.enabled:
        return None
    return _TRACER.current()


def reset() -> None:
    """Clear the global tracer's recorded spans."""
    _TRACER.reset()


def walk(sp: Span):
    """Yield ``sp`` and all descendants, depth-first, parents first."""
    yield sp
    for child in sp.children:
        yield from walk(child)


@dataclass
class PhaseStat:
    """Aggregated view of every span sharing one name."""

    name: str
    count: int = 0
    wall_seconds: float = 0.0
    self_seconds: float = 0.0
    sim_time: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-ready form (all values as floats)."""
        return {
            "count": float(self.count),
            "wall_seconds": self.wall_seconds,
            "self_seconds": self.self_seconds,
            "sim_time": self.sim_time,
        }


def aggregate(spans) -> dict[str, PhaseStat]:
    """Per-name totals over a span forest, in first-seen order.

    ``wall_seconds`` sums full durations (a child's time is also inside
    its parent's total — the tree view); ``self_seconds`` sums time not
    attributed to any child span, so self times sum to total traced time
    without double counting.
    """
    out: dict[str, PhaseStat] = {}
    for root in spans:
        for sp in walk(root):
            stat = out.get(sp.name)
            if stat is None:
                stat = out[sp.name] = PhaseStat(sp.name)
            stat.count += 1
            stat.wall_seconds += sp.duration
            stat.self_seconds += sp.self_seconds
            stat.sim_time += sp.sim_time
    return out
