"""Trace/metric export: JSON documents, Chrome ``trace_event``, reports.

Three output shapes, one source of truth (the tracer + registry):

* **trace document** — nested spans plus per-phase aggregates and a
  metrics snapshot; what ``python -m repro.cli obs-report`` consumes.
* **Chrome trace** — a ``trace_event`` array loadable in
  ``chrome://tracing`` / Perfetto ("complete" ``ph: "X"`` events,
  microsecond timestamps).
* **``OBS_<name>.json``** — the flat summary written next to the bench
  harness's ``BENCH_<name>.json`` files: same naming convention, same
  directory, so the cross-PR trajectory tooling picks both up.
"""

from __future__ import annotations

import json
import pathlib

from .metrics import MetricsRegistry, REGISTRY
from .trace import Span, Tracer, aggregate, get_tracer

__all__ = [
    "span_to_dict",
    "trace_document",
    "to_chrome_trace",
    "write_trace_json",
    "write_chrome_trace",
    "write_obs_json",
    "load_trace",
    "render_report",
    "render_exemplars",
]


def _jsonable(obj):
    """JSON-safe conversion (non-finite floats become ``None``)."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, float):
        return obj if obj == obj and abs(obj) != float("inf") else None
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if hasattr(obj, "item"):  # numpy scalars
        return _jsonable(obj.item())
    return str(obj)


def span_to_dict(sp: Span) -> dict:
    """Nested JSON form of one span (children recursively included)."""
    return {
        "name": sp.name,
        "t_start": sp.t_start,
        "t_end": sp.t_end,
        "duration": sp.duration,
        "sim_time": sp.sim_time,
        "tid": sp.tid,
        "attrs": _jsonable(sp.attrs),
        "children": [span_to_dict(c) for c in sp.children],
    }


def trace_document(
    name: str,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
) -> dict:
    """Full export: nested spans + per-phase aggregates + metrics."""
    from .record import environment_fingerprint

    # Lazy import: the kernel layer imports obs at module load, so this
    # direction must resolve at call time only.
    from ..kernels import accounting as kernel_accounting

    tracer = tracer or get_tracer()
    registry = registry or REGISTRY
    phases = aggregate(tracer.roots)
    return {
        "obs": name,
        "env": environment_fingerprint(),
        "phases": {k: v.as_dict() for k, v in phases.items()},
        "metrics": _jsonable(registry.snapshot()),
        "exemplars": _jsonable(registry.exemplar_snapshot()),
        "kernel_classes": _jsonable(kernel_accounting.per_class_snapshot()),
        "spans": [span_to_dict(r) for r in tracer.roots],
    }


def to_chrome_trace(roots: list[Span]) -> list[dict]:
    """Spans as Chrome ``trace_event`` "complete" events.

    Timestamps are microseconds relative to the earliest root so the
    viewer opens at t=0 regardless of the clock's epoch. Open spans
    (no ``t_end``) are skipped — they have no extent to draw.

    Each recording thread gets its own lane: span ``tid`` values
    (python thread idents) are remapped to dense small ints in
    first-seen order, so the lane numbering is deterministic for a
    given trace regardless of what idents the OS handed out. Spans with
    no thread (virtual-clock request trees) share lane 0 with the first
    thread seen.
    """
    if not roots:
        return []
    t0 = min(r.t_start for r in roots)
    events: list[dict] = []
    lanes: dict[int | None, int] = {}

    def lane(tid: int | None) -> int:
        if tid is None:
            return 0
        n = lanes.get(tid)
        if n is None:
            n = lanes[tid] = len(lanes)
        return n

    def emit(sp: Span) -> None:
        if sp.t_end is not None:
            events.append(
                {
                    "name": sp.name,
                    "ph": "X",
                    "ts": (sp.t_start - t0) * 1e6,
                    "dur": sp.duration * 1e6,
                    "pid": 0,
                    "tid": lane(sp.tid),
                    "args": _jsonable({**sp.attrs, "sim_time": sp.sim_time}),
                }
            )
        for c in sp.children:
            emit(c)

    for r in roots:
        emit(r)
    return events


def write_trace_json(
    path,
    name: str,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
) -> pathlib.Path:
    """Write the full trace document to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = trace_document(name, tracer, registry)
    path.write_text(json.dumps(_jsonable(doc), indent=2) + "\n")
    return path


def write_chrome_trace(path, tracer: Tracer | None = None) -> pathlib.Path:
    """Write a ``chrome://tracing``-loadable event array to ``path``."""
    tracer = tracer or get_tracer()
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"traceEvents": to_chrome_trace(tracer.roots)}) + "\n"
    )
    return path


def write_obs_json(
    path,
    name: str,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
) -> pathlib.Path:
    """Write the flat ``OBS_<name>.json`` summary (no span tree).

    The shape mirrors ``BENCH_<name>.json`` (``{"obs": name, ...}`` vs
    ``{"bench": name, ...}``): per-phase aggregates plus the metrics
    snapshot, small enough to diff across PRs.
    """
    from .record import environment_fingerprint

    tracer = tracer or get_tracer()
    registry = registry or REGISTRY
    doc = {
        "obs": name,
        "env": environment_fingerprint(),
        "phases": {k: v.as_dict() for k, v in aggregate(tracer.roots).items()},
        "metrics": _jsonable(registry.snapshot()),
        "exemplars": _jsonable(registry.exemplar_snapshot()),
    }
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_jsonable(doc), indent=2, sort_keys=True) + "\n")
    return path


def load_trace(path) -> dict:
    """Read a document written by :func:`write_trace_json` /
    :func:`write_obs_json`."""
    return json.loads(pathlib.Path(path).read_text())


def render_report(doc: dict) -> str:
    """Per-phase breakdown table from an exported trace document.

    ``wall_%`` is the phase's share of *self* time (time not inside a
    child span), so the column sums to ~100 without double counting
    nested spans; ``per_call_ms`` is mean wall time per span.
    """
    phases = doc.get("phases", {})
    if not phases:
        return f"obs report: {doc.get('obs', '?')}\n(no spans recorded)"
    total_self = sum(p.get("self_seconds", 0.0) for p in phases.values())
    rows = []
    for phase_name, p in phases.items():
        count = p.get("count", 0.0)
        wall = p.get("wall_seconds", 0.0)
        rows.append(
            {
                "phase": phase_name,
                "count": int(count),
                "wall_s": wall,
                "self_s": p.get("self_seconds", 0.0),
                "wall_%": (
                    100.0 * p.get("self_seconds", 0.0) / total_self
                    if total_self > 0
                    else 0.0
                ),
                "per_call_ms": 1e3 * wall / count if count else 0.0,
                "sim_time": p.get("sim_time", 0.0),
            }
        )
    from ..experiments.common import format_table

    title = f"obs report: {doc.get('obs', '?')}"
    table = format_table(rows, title=title)
    counters = doc.get("metrics", {}).get("counters", {})
    if counters:
        counter_rows = [
            {"counter": k, "value": v} for k, v in sorted(counters.items())
        ]
        table += "\n\n" + format_table(counter_rows, title="counters")
    return table


def render_exemplars(doc: dict) -> str:
    """Tail-exemplar table from an exported document.

    One row per retained exemplar (largest values first per histogram):
    the concrete slow requests behind the aggregate percentiles, with
    the request id to feed to ``obs-report --request``.
    """
    exemplars = doc.get("exemplars", {})
    rows = []
    for hist_name, entries in sorted(exemplars.items()):
        for e in entries:
            rows.append(
                {
                    "histogram": hist_name,
                    "value_ms": 1e3 * (e.get("value") or 0.0),
                    "request_id": e.get("request_id"),
                    "span_ref": e.get("span_ref") or "-",
                }
            )
    title = f"tail exemplars: {doc.get('obs', '?')}"
    if not rows:
        return f"{title}\n(no exemplars retained)"
    from ..experiments.common import format_table

    return format_table(rows, title=title)
