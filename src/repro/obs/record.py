"""Normalized benchmark records: raw samples + environment fingerprint.

The ``BENCH_*.json`` files are the repo's cross-PR performance
trajectory, but a point-in-time aggregate is useless for longitudinal
comparison: without the raw per-iteration samples there is nothing to
run a statistical test on, and without an environment fingerprint a
float32 run would be compared against a float64 one. This module defines
the one record shape every benchmark emitter shares:

* :func:`environment_fingerprint` — git sha, python/numpy versions,
  platform, ``dtype_policy``, ``spmm_backend`` and seed, as one flat
  string dict;
* :func:`fingerprint_key` — the stable digest of the *configuration*
  part of a fingerprint (the git sha is excluded: the whole point is to
  compare across commits, never across configurations);
* :class:`MetricSeries` / :class:`BenchRecord` — named sample series
  (raw values, unit, better-direction) under one bench + fingerprint;
* :func:`write_bench_json` — the single writer behind every
  ``BENCH_<name>.json`` in the repo (``repro.experiments.common``
  delegates here), which embeds the record so no emitter can forget it;
* :class:`BenchReporter` — one owner for the ``<name>.txt`` /
  ``BENCH_<name>.json`` / ``OBS_<name>.json`` naming convention, used by
  ``benchmarks/conftest.py`` so the three sibling files cannot drift.

Downstream, :mod:`repro.obs.history` appends records to the JSONL store
and :mod:`repro.obs.regress` runs the statistical comparison.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import platform as _platform
import subprocess
import sys
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "RECORD_SCHEMA_VERSION",
    "VOLATILE_FINGERPRINT_KEYS",
    "environment_fingerprint",
    "fingerprint_key",
    "git_sha",
    "MetricSeries",
    "BenchRecord",
    "write_bench_json",
    "load_bench_records",
    "BenchReporter",
]

#: Bumped when the embedded record shape changes incompatibly.
RECORD_SCHEMA_VERSION = 1

#: Fingerprint fields that identify *when* a run happened rather than
#: *what configuration* ran: excluded from :func:`fingerprint_key` so a
#: history series accumulates across commits.
VOLATILE_FINGERPRINT_KEYS = frozenset({"git_sha"})

_GIT_SHA_CACHE: dict[str, str] = {}


def git_sha(repo_dir: pathlib.Path | str | None = None) -> str:
    """Current commit sha of ``repo_dir`` (default: this file's repo).

    Returns ``"unknown"`` outside a git checkout (e.g. an installed
    wheel) — the fingerprint stays well-formed either way.
    """
    root = str(
        pathlib.Path(repo_dir)
        if repo_dir is not None
        else pathlib.Path(__file__).resolve().parent
    )
    cached = _GIT_SHA_CACHE.get(root)
    if cached is not None:
        return cached
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
        sha = out.stdout.strip() if out.returncode == 0 else "unknown"
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    _GIT_SHA_CACHE[root] = sha or "unknown"
    return _GIT_SHA_CACHE[root]


def environment_fingerprint(
    *,
    dtype_policy: str | None = None,
    spmm_backend: str | None = None,
    seed: int | None = None,
    extra: dict | None = None,
) -> dict[str, str]:
    """The flat environment descriptor embedded in every record.

    ``dtype_policy`` defaults to the reference policy and
    ``spmm_backend`` to the kernel registry's process-wide default, so a
    fingerprint taken with no arguments still names a complete numeric
    regime. ``extra`` entries are merged in verbatim (stringified) and
    participate in the series key like any other field.
    """
    if spmm_backend is None:
        from ..kernels.backends import default_backend

        spmm_backend = default_backend()
    env = {
        "git_sha": git_sha(),
        "python": _platform.python_version(),
        "numpy": np.__version__,
        "platform": f"{sys.platform}-{_platform.machine()}",
        "dtype_policy": dtype_policy or "reference",
        "spmm_backend": spmm_backend,
        "seed": "none" if seed is None else str(seed),
    }
    for k, v in (extra or {}).items():
        env[str(k)] = str(v)
    return env


def fingerprint_key(env: dict) -> str:
    """Stable 12-hex digest of the configuration part of ``env``.

    Two runs that differ only in volatile fields (git sha) share a key —
    they belong to the same history series; two runs that differ in any
    configuration field (``dtype_policy``, ``spmm_backend``, seed,
    python/numpy version, ...) never do.
    """
    stable = {
        str(k): str(v)
        for k, v in env.items()
        if str(k) not in VOLATILE_FINGERPRINT_KEYS
    }
    blob = json.dumps(stable, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


@dataclass
class MetricSeries:
    """Raw samples of one metric: values, unit, and which way is better.

    ``direction`` is ``"lower"`` (times), ``"higher"`` (throughput) or
    ``"none"`` (informational — never gated).
    """

    samples: list[float]
    unit: str = "s"
    direction: str = "lower"

    def as_dict(self) -> dict:
        """JSON-ready dict form (floats coerced, field names stable)."""
        return {
            "samples": [float(v) for v in self.samples],
            "unit": self.unit,
            "direction": self.direction,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MetricSeries":
        """Inverse of :meth:`as_dict`, tolerant of missing fields."""
        return cls(
            samples=[float(v) for v in d.get("samples", [])],
            unit=str(d.get("unit", "s")),
            direction=str(d.get("direction", "lower")),
        )


@dataclass
class BenchRecord:
    """One bench run: named sample series under one fingerprint."""

    bench: str
    env: dict[str, str] = field(default_factory=environment_fingerprint)
    series: dict[str, MetricSeries] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """The history-series key of this record's configuration."""
        return fingerprint_key(self.env)

    def add_samples(
        self,
        metric: str,
        samples,
        *,
        unit: str = "s",
        direction: str = "lower",
    ) -> "BenchRecord":
        """Attach one metric's raw samples; returns ``self`` for chaining."""
        self.series[metric] = MetricSeries(
            [float(v) for v in samples], unit=unit, direction=direction
        )
        return self

    def as_dict(self) -> dict:
        """JSON-ready dict: schema version, fingerprint, key, series."""
        return {
            "schema": RECORD_SCHEMA_VERSION,
            "env": dict(self.env),
            "key": self.key,
            "series": {k: s.as_dict() for k, s in sorted(self.series.items())},
        }

    @classmethod
    def from_dict(cls, d: dict, *, bench: str = "") -> "BenchRecord":
        return cls(
            bench=bench or str(d.get("bench", "")),
            env={str(k): str(v) for k, v in d.get("env", {}).items()},
            series={
                str(k): MetricSeries.from_dict(v)
                for k, v in d.get("series", {}).items()
            },
        )

    @classmethod
    def from_registry(
        cls,
        bench: str,
        *,
        registry=None,
        env: dict[str, str] | None = None,
    ) -> "BenchRecord":
        """Harvest raw time-like samples from an obs metrics registry.

        Every histogram whose name reads as a duration (``*_seconds``,
        ``*_s``, or containing ``latency``) becomes one series — this is
        how ``trainer.iteration_seconds`` and the serving latency
        histograms flow into the bench record without each runner
        re-plumbing them.
        """
        if registry is None:
            from .metrics import get_registry

            registry = get_registry()
        rec = cls(bench=bench, env=env or environment_fingerprint())
        for name, hist in sorted(registry.histograms.items()):
            if not len(hist):
                continue
            if (
                name.endswith("_seconds")
                or name.endswith("_s")
                or "latency" in name
            ):
                rec.add_samples(name, hist.samples, unit="s", direction="lower")
        return rec


def write_bench_json(
    path: pathlib.Path | str,
    name: str,
    results: object,
    *,
    record: BenchRecord | None = None,
    samples: dict[str, list[float]] | None = None,
    env: dict[str, str] | None = None,
) -> pathlib.Path:
    """Write one ``BENCH_<name>.json``: results + embedded record.

    The single code path behind every BENCH file in the repo
    (``repro.experiments.common.write_bench_json`` delegates here). When
    no explicit ``record`` is given, one is built from ``env`` (default:
    a fresh :func:`environment_fingerprint`) plus any ``samples``
    (metric name → raw values, recorded lower-is-better in seconds) and
    whatever time-like histograms the live obs registry holds — so every
    emitted file carries a fingerprint even if the caller predates this
    module.
    """
    from ..experiments.common import to_jsonable

    if record is None:
        record = BenchRecord.from_registry(name, env=env)
    record.bench = name
    for metric, values in (samples or {}).items():
        record.add_samples(metric, values)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "bench": name,
        "results": to_jsonable(results),
        "record": to_jsonable(record.as_dict()),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench_records(results_dir: pathlib.Path | str) -> list[BenchRecord]:
    """Parse every ``BENCH_*.json`` under ``results_dir`` into records.

    Files without an embedded record, or with an empty series (nothing
    to compare), are skipped — old-format artifacts do not break the
    diff/gate tooling.
    """
    results_dir = pathlib.Path(results_dir)
    records: list[BenchRecord] = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        raw = payload.get("record")
        if not isinstance(raw, dict) or not raw.get("series"):
            continue
        records.append(
            BenchRecord.from_dict(raw, bench=str(payload.get("bench", path.stem)))
        )
    return records


class BenchReporter:
    """One owner for a results directory's file-naming convention.

    ``<name>.txt`` (rendered table), ``BENCH_<name>.json`` (results +
    record) and ``OBS_<name>.json`` (span/metric summary) are derived
    from the *same* name in the *same* place, so the three sibling
    artifacts of one bench run can never drift apart.
    """

    def __init__(self, results_dir: pathlib.Path | str) -> None:
        self.results_dir = pathlib.Path(results_dir)

    # -- naming (the one place paths come from) ------------------------
    def table_path(self, name: str) -> pathlib.Path:
        """Where the rendered table for ``name`` lives."""
        return self.results_dir / f"{name}.txt"

    def bench_path(self, name: str) -> pathlib.Path:
        """Where the BENCH json (results + record) for ``name`` lives."""
        return self.results_dir / f"BENCH_{name}.json"

    def obs_path(self, name: str) -> pathlib.Path:
        """Where the OBS json (trace summary) for ``name`` lives."""
        return self.results_dir / f"OBS_{name}.json"

    # -- writers -------------------------------------------------------
    def write_table(self, name: str, text: str) -> pathlib.Path:
        """Write the rendered table; returns the path written."""
        path = self.table_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n")
        return path

    def write_results(
        self,
        name: str,
        results: object,
        *,
        record: BenchRecord | None = None,
        samples: dict[str, list[float]] | None = None,
        env: dict[str, str] | None = None,
    ) -> pathlib.Path:
        """Write ``BENCH_<name>.json`` via :func:`write_bench_json`."""
        return write_bench_json(
            self.bench_path(name),
            name,
            results,
            record=record,
            samples=samples,
            env=env,
        )

    def write_obs(self, name: str) -> pathlib.Path:
        """Write ``OBS_<name>.json`` from the live tracer/registry."""
        from .export import write_obs_json

        return write_obs_json(self.obs_path(name), name)
