"""Process-wide counters, gauges and exact-percentile histograms.

The "how much / how often" half of ``repro.obs``: one registry that any
subsystem can drop a measurement into without threading a metrics object
through every call site::

    from repro.obs import metrics

    metrics.inc("sampler.pops")                 # counter += 1
    metrics.inc("prop.spmm_chunks", q)          # counter += q
    metrics.set_gauge("sampler.valid_ratio", r) # last-value gauge
    metrics.observe("sampler.occupancy", r)     # histogram sample

The module-level helpers are **guarded**: they check the
:mod:`repro.obs._gate` flag first and cost one attribute read when
instrumentation is disabled. The :class:`Histogram` keeps raw samples and
answers exact percentiles with ``np.percentile``'s default linear
interpolation, so p50/p95/p99 columns are testable against the numpy
oracle rather than approximations from fixed buckets.

:class:`LatencyHistogram` (the non-negative-samples variant) originated in
``repro.serving.metrics`` and now lives here; the serving module re-exports
it, so ``from repro.serving.metrics import LatencyHistogram`` keeps
working unchanged — as does ``ServingMetrics``, which this module
re-exports in the other direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ._gate import GATE

__all__ = [
    "Counter",
    "Gauge",
    "Exemplar",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "inc",
    "set_gauge",
    "observe",
    "snapshot",
    "reset",
    "ServingMetrics",
]


class Counter:
    """Monotone accumulator (float so it can count ops or bytes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def add(self, n: float = 1.0) -> None:
        """Increment by ``n`` (default 1)."""
        self.value += n

    def reset(self) -> None:
        """Zero the accumulator."""
        self.value = 0.0


class Gauge:
    """Last-written value (occupancy, queue depth, ratios)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = float("nan")

    def set(self, v: float) -> None:
        """Overwrite with the latest observation."""
        self.value = float(v)

    def reset(self) -> None:
        """Return to the never-written (NaN) state."""
        self.value = float("nan")


@dataclass(frozen=True)
class Exemplar:
    """A concrete sample worth keeping a handle to.

    Ties one histogram value back to the request that produced it
    (``request_id``) and, optionally, a span reference (``span_ref``,
    e.g. the trace document that holds the request's span tree) — the
    jump-off point from "p99 regressed" to one reconstructable request.
    """

    value: float
    request_id: str
    span_ref: str | None = None

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form."""
        return {
            "value": self.value,
            "request_id": self.request_id,
            "span_ref": self.span_ref,
        }


#: Reservoir capacity per histogram. Sized so every above-p99 sample of a
#: bench-scale replay (a few thousand requests → a few tens above p99)
#: survives min-eviction.
EXEMPLAR_CAPACITY = 32

#: Trailing window over which the admission threshold (p95) is computed.
_EXEMPLAR_WINDOW = 256

#: Samples required before the trailing p95 is trusted; during warmup
#: every candidate is admitted (min-eviction cleans them out later).
_EXEMPLAR_WARMUP = 20

#: Samples between recomputations of the trailing p95. The threshold is
#: allowed to go this stale: an exact per-sample ``np.percentile`` would
#: dominate the serve hot path (see ``tests/obs/test_overhead.py``), and
#: admission only needs to be *biased* toward the tail — min-eviction
#: still guarantees the largest values survive.
_EXEMPLAR_REFRESH = 32


class Histogram:
    """Sample accumulator with exact percentile queries.

    Keeps every sample (these are bench/test-scale runs, not a prod
    telemetry pipeline) so percentiles match ``np.percentile`` exactly.

    A bounded reservoir of :class:`Exemplar` rides along: callers that
    know which request produced a sample offer it via
    :meth:`record_exemplar`, and the reservoir keeps the ones biased
    toward the tail — above the trailing p95 of the last
    ``_EXEMPLAR_WINDOW`` samples, evicting the smallest-valued exemplar
    when full. The retained set is therefore the largest admitted values
    seen, so every above-p99 request of a replay stays resolvable.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._exemplars: list[Exemplar] = []
        self._p95_cache: float | None = None
        self._p95_at = 0

    def _trailing_p95(self) -> float | None:
        """Admission threshold, or ``None`` while still warming up.

        Recomputed from the trailing window only every
        ``_EXEMPLAR_REFRESH`` samples; in between the cached value is
        served so the hot path stays cheap.
        """
        n = len(self._samples)
        if n < _EXEMPLAR_WARMUP:
            return None
        if self._p95_cache is None or n - self._p95_at >= _EXEMPLAR_REFRESH:
            window = self._samples[-_EXEMPLAR_WINDOW:]
            self._p95_cache = float(np.percentile(np.asarray(window), 95))
            self._p95_at = n
        return self._p95_cache

    def record_exemplar(
        self, value: float, request_id: str, span_ref: str | None = None
    ) -> bool:
        """Offer an exemplar for ``value``; returns True if retained.

        Call after :meth:`record`-ing the sample itself so the trailing
        threshold includes it. Sub-threshold candidates are dropped once
        the histogram is warm; when the reservoir is full the smallest
        exemplar makes room, so retention is biased to the tail.
        """
        value = float(value)
        threshold = self._trailing_p95()
        if threshold is not None and value < threshold:
            return False
        ex = Exemplar(value, request_id, span_ref)
        if len(self._exemplars) < EXEMPLAR_CAPACITY:
            self._exemplars.append(ex)
            return True
        lo = min(range(len(self._exemplars)), key=lambda i: self._exemplars[i].value)
        if self._exemplars[lo].value < value:
            self._exemplars[lo] = ex
            return True
        return False

    @property
    def exemplars(self) -> tuple[Exemplar, ...]:
        """Retained exemplars, largest value first."""
        return tuple(sorted(self._exemplars, key=lambda e: -e.value))

    def record(self, value: float) -> None:
        """Add one sample."""
        self._samples.append(float(value))

    def extend(self, values) -> None:
        """Add many samples."""
        for v in values:
            self.record(v)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self._samples)

    @property
    def samples(self) -> tuple[float, ...]:
        """The raw samples, in recording order (what bench records and
        SLO evaluators consume — aggregates alone cannot be re-tested)."""
        return tuple(self._samples)

    def percentile(self, q: float) -> float:
        """Exact ``q``-th percentile (linear interpolation); NaN if empty."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if not self._samples:
            return float("nan")
        xs = np.sort(np.asarray(self._samples))
        # Linear interpolation between closest ranks, the numpy default.
        pos = (q / 100.0) * (xs.size - 1)
        lo = int(np.floor(pos))
        hi = int(np.ceil(pos))
        frac = pos - lo
        return float(xs[lo] * (1.0 - frac) + xs[hi] * frac)

    def mean(self) -> float:
        """Arithmetic mean; NaN if empty."""
        return float(np.mean(self._samples)) if self._samples else float("nan")

    def max(self) -> float:
        """Largest sample; NaN if empty."""
        return float(np.max(self._samples)) if self._samples else float("nan")

    def summary(self, scale: float = 1.0) -> dict[str, float]:
        """p50/p95/p99/mean/max/count, with values multiplied by ``scale``
        (e.g. ``1e3`` for milliseconds)."""
        return {
            "count": float(self.count),
            "p50": self.percentile(50) * scale,
            "p95": self.percentile(95) * scale,
            "p99": self.percentile(99) * scale,
            "mean": self.mean() * scale,
            "max": self.max() * scale,
        }

    def reset(self) -> None:
        """Drop all samples and exemplars."""
        self._samples.clear()
        self._exemplars.clear()
        self._p95_cache = None
        self._p95_at = 0


class LatencyHistogram(Histogram):
    """Latency sample accumulator: a :class:`Histogram` of non-negative
    seconds (the serving layer's p50/p95/p99 source)."""

    def record(self, value: float) -> None:
        """Add one latency sample (seconds)."""
        if value < 0:
            raise ValueError("latency cannot be negative")
        super().record(value)


class MetricsRegistry:
    """Name-addressed collection of counters, gauges and histograms.

    Instruments are created on first touch; reads of a name that was
    never written return a fresh zero instrument rather than raising, so
    report code need not care which subsystems actually ran.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Flat JSON-ready view: counters, gauges, histogram summaries."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: h.summary() for k, h in sorted(self.histograms.items()) if len(h)
            },
        }

    def exemplar_snapshot(self) -> dict[str, list[dict[str, object]]]:
        """Per-histogram exemplars (largest first), JSON-ready.

        Only histograms that retained at least one exemplar appear —
        this is the ``"exemplars"`` section of ``OBS_*.json`` documents
        and flight dumps.
        """
        return {
            k: [e.as_dict() for e in h.exemplars]
            for k, h in sorted(self.histograms.items())
            if h.exemplars
        }

    def reset(self) -> None:
        """Drop every instrument (names included)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry the guarded helpers write into."""
    return REGISTRY


def inc(name: str, n: float = 1.0) -> None:
    """Guarded counter increment (no-op while instrumentation is off)."""
    if GATE.enabled:
        REGISTRY.counter(name).add(n)


def set_gauge(name: str, v: float) -> None:
    """Guarded gauge write (no-op while instrumentation is off)."""
    if GATE.enabled:
        REGISTRY.gauge(name).set(v)


def observe(
    name: str,
    v: float,
    request_id: str | None = None,
    span_ref: str | None = None,
) -> None:
    """Guarded histogram sample (no-op while instrumentation is off).

    When the caller knows which request produced the sample, passing
    ``request_id`` (and optionally ``span_ref``) additionally offers the
    sample to the histogram's tail-exemplar reservoir.
    """
    if GATE.enabled:
        h = REGISTRY.histogram(name)
        h.record(v)
        if request_id is not None:
            h.record_exemplar(v, request_id, span_ref)


def snapshot() -> dict[str, dict[str, float]]:
    """Snapshot of the process-wide registry."""
    return REGISTRY.snapshot()


def reset() -> None:
    """Clear the process-wide registry."""
    REGISTRY.reset()


def __getattr__(name: str):
    # Lazy re-export so `repro.obs.metrics` subsumes the serving metrics
    # namespace without a circular import (serving.metrics imports the
    # histogram classes from here at module load).
    if name == "ServingMetrics":
        from ..serving.metrics import ServingMetrics

        return ServingMetrics
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
