"""Request-scoped tracing: causal span trees for individual requests.

The batch-level spans of :mod:`repro.obs.trace` answer "where does the
*workload's* time go"; this module answers "where did *this request's*
time go". A :class:`RequestContext` owns one span tree rooted at a
``request`` span, built with **explicit timestamps** (the serving
replays run on a discrete-event virtual clock, so spans cannot come from
the tracer's wall-clock stack), and is threaded from
:class:`~repro.serving.batcher.MicroBatcher` admission through batch
execution, router fan-out, per-shard/replica dispatch and hedged
duplicates. When the request completes, :meth:`RequestContext.finish`
attaches the tree to the tracer as a root, so it exports through the
same document / Chrome-trace machinery as every other span.

The resulting forest is addressable by request id:

* :func:`find_request` — locate a request's root span (or its exported
  dict form) by id;
* :func:`critical_path` — the chain of spans that determined the
  request's completion time (at each level, the child that finished
  last);
* :func:`critical_path_coverage` — the fraction of the request's
  recorded latency covered by the union of the path's span intervals
  (the ≥95% reconstruction contract);
* :func:`render_request_tree` — the ascii tree behind
  ``obs-report --request <id>``, with hedged duplicates marked
  ``winner`` / ``lost`` / ``cancelled``.

Request ids are drawn from a process-wide counter
(:func:`new_request_id`), namespaced per replay via :func:`new_trace_id`
so two replays in one process never collide; both counters reset with
``obs.reset()`` so tests and CLI runs get reproducible ids.
"""

from __future__ import annotations

import threading

from .trace import Span, get_tracer

__all__ = [
    "RequestContext",
    "new_request_id",
    "new_trace_id",
    "reset_ids",
    "find_request",
    "request_ids",
    "critical_path",
    "critical_path_coverage",
    "render_request_tree",
]

#: Attribute key carrying the request id on a request root span.
REQUEST_ID_ATTR = "request_id"

#: Name of every request root span.
REQUEST_SPAN_NAME = "request"

_COUNTER_LOCK = threading.Lock()
_REQUEST_COUNTER = 0
_TRACE_COUNTER = 0


def new_request_id(prefix: str = "req") -> str:
    """Next process-wide request id (``req-000001``, …)."""
    global _REQUEST_COUNTER
    with _COUNTER_LOCK:
        _REQUEST_COUNTER += 1
        n = _REQUEST_COUNTER
    return f"{prefix}-{n:06d}"


def new_trace_id(prefix: str = "t") -> str:
    """Next replay namespace (``t1``, ``t2``, …).

    A replay uses it as the request-id prefix
    (``f"{trace_id}.req"``) so ids stay unique when one process replays
    several traces (serve-bench runs four configurations back to back).
    """
    global _TRACE_COUNTER
    with _COUNTER_LOCK:
        _TRACE_COUNTER += 1
        n = _TRACE_COUNTER
    return f"{prefix}{n}"


def reset_ids() -> None:
    """Rewind both id counters (called from ``obs.reset()``)."""
    global _REQUEST_COUNTER, _TRACE_COUNTER
    with _COUNTER_LOCK:
        _REQUEST_COUNTER = 0
        _TRACE_COUNTER = 0


class RequestContext:
    """One request's causal span tree on an explicit clock.

    Parameters
    ----------
    request_id:
        Unique id (see :func:`new_request_id`); stored as the root
        span's ``request_id`` attribute.
    t_start:
        Admission time on the replay clock.
    attrs:
        Extra root attributes (query id, k, …).
    """

    __slots__ = ("request_id", "root")

    def __init__(self, request_id: str, t_start: float, **attrs: object) -> None:
        self.request_id = request_id
        self.root = Span(REQUEST_SPAN_NAME, t_start, None)
        self.root.attrs[REQUEST_ID_ATTR] = request_id
        if attrs:
            self.root.attrs.update(attrs)

    def child(
        self,
        name: str,
        t_start: float,
        *,
        parent: Span | None = None,
        t_end: float | None = None,
        **attrs: object,
    ) -> Span:
        """Add a span under ``parent`` (default: the root).

        ``t_end=None`` leaves the span open; close it later by assigning
        ``span.t_end`` (or let :meth:`finish` close it at the request's
        completion time).
        """
        sp = Span(name, t_start, None)
        sp.t_end = t_end
        if attrs:
            sp.attrs.update(attrs)
        (parent if parent is not None else self.root).children.append(sp)
        return sp

    def finish(self, t_end: float, tracer=None, **attrs: object) -> Span:
        """Close the tree at ``t_end`` and attach it to the tracer.

        Any still-open descendant is closed at ``t_end`` too (a shed
        request's sub-spans never saw service). Returns the root.
        """
        if attrs:
            self.root.attrs.update(attrs)
        # Iterative close (hot path: once per served request; the
        # generator-based walk() shows up in serve-replay profiles).
        stack = [self.root]
        while stack:
            sp = stack.pop()
            if sp.t_end is None:
                sp.t_end = t_end
            if sp.children:
                stack.extend(sp.children)
        self.root.t_end = t_end
        (tracer if tracer is not None else get_tracer()).add_root(self.root)
        return self.root


# -- forest queries (Span objects or exported dict nodes) ---------------

def _name(node) -> str:
    return node["name"] if isinstance(node, dict) else node.name


def _attrs(node) -> dict:
    return node.get("attrs", {}) if isinstance(node, dict) else node.attrs


def _children(node) -> list:
    return node.get("children", []) if isinstance(node, dict) else node.children


def _t_start(node) -> float:
    return node["t_start"] if isinstance(node, dict) else node.t_start


def _t_end(node) -> float | None:
    return node.get("t_end") if isinstance(node, dict) else node.t_end


def _walk_any(node):
    yield node
    for c in _children(node):
        yield from _walk_any(c)


def find_request(roots, request_id: str):
    """The ``request`` span with ``request_id``, searching a span forest.

    ``roots`` is a list of :class:`~repro.obs.trace.Span` objects *or*
    exported dict nodes (a trace document's ``"spans"`` list, a flight
    dump's ``"spans"`` list) — request trees are addressed the same way
    live and post-mortem. Returns ``None`` when absent.
    """
    for root in roots:
        for node in _walk_any(root):
            if (
                _name(node) == REQUEST_SPAN_NAME
                and _attrs(node).get(REQUEST_ID_ATTR) == request_id
            ):
                return node
    return None


def request_ids(roots) -> list[str]:
    """Every request id present in a span forest, in recording order."""
    out: list[str] = []
    for root in roots:
        for node in _walk_any(root):
            if _name(node) == REQUEST_SPAN_NAME:
                rid = _attrs(node).get(REQUEST_ID_ATTR)
                if rid is not None:
                    out.append(str(rid))
    return out


def critical_path(root) -> list:
    """Spans that determined the request's completion, root first.

    Walks *backward* from the request's completion: at each cursor the
    span still active there that extends furthest back is the one the
    request was waiting on (the winning dispatch at completion, the
    queue wait before it, …). When no span is active at the cursor the
    walk jumps to the previous completion — that gap is unattributed
    time and counts against :func:`critical_path_coverage`. Descendants
    are considered across the whole tree, so sibling spans (queue then
    service) chain naturally. Hedged duplicates marked ``lost`` or
    ``cancelled`` are excluded: they may finish after the winner, but
    the request never waited on them.
    """
    t0, t1 = _t_start(root), _t_end(root)
    nodes = [
        sp
        for i, sp in enumerate(_walk_any(root))
        if i > 0
        and _t_end(sp) is not None
        and not _attrs(sp).get("lost")
        and not _attrs(sp).get("cancelled")
    ]
    path: list = []
    cursor = t1
    while cursor is not None and cursor > t0:
        active = [
            s for s in nodes if _t_start(s) < cursor and _t_end(s) >= cursor
        ]
        if active:
            nxt = min(active, key=_t_start)
        else:
            before = [s for s in nodes if _t_end(s) < cursor]
            if not before:
                break
            nxt = max(before, key=_t_end)
        path.append(nxt)
        if _t_start(nxt) >= cursor:
            break  # zero-length span: cannot make progress
        cursor = _t_start(nxt)
    path.reverse()
    return [root] + path


def critical_path_coverage(root) -> float:
    """Fraction of the request's latency explained by its critical path.

    The union of the path spans' intervals (root excluded), clipped to
    the root's own interval, divided by the root's duration. 1.0 means
    the reconstruction accounts for every recorded second; the
    acceptance contract is ≥ 0.95.
    """
    t0, t1 = _t_start(root), _t_end(root)
    if t1 is None or t1 <= t0:
        return 1.0  # zero-latency request (cache hit): nothing to explain
    intervals = sorted(
        (max(_t_start(sp), t0), min(_t_end(sp), t1))
        for sp in critical_path(root)[1:]
        if _t_end(sp) is not None and _t_end(sp) > t0 and _t_start(sp) < t1
    )
    covered = 0.0
    cursor = t0
    for lo, hi in intervals:
        lo = max(lo, cursor)
        if hi > lo:
            covered += hi - lo
            cursor = hi
    return covered / (t1 - t0)


def _mark(node) -> str:
    """Status tag for a dispatch span (hedging outcome)."""
    attrs = _attrs(node)
    tags = []
    if attrs.get("hedge"):
        tags.append("hedge")
    if attrs.get("winner"):
        tags.append("winner")
    elif attrs.get("cancelled"):
        tags.append("cancelled")
    elif attrs.get("lost"):
        tags.append("lost")
    if attrs.get("leaked"):
        tags.append("leaked")
    return f" [{'/'.join(tags)}]" if tags else ""


def render_request_tree(root, *, unit_scale: float = 1e3, unit: str = "ms") -> str:
    """Ascii tree of one request's spans with interval + key attributes.

    Times are printed relative to the request's admission (``+x.xx ms``)
    so the tree reads as a timeline; the footer reports the critical
    path and its latency coverage.
    """
    t0 = _t_start(root)
    rid = _attrs(root).get(REQUEST_ID_ATTR, "?")
    lines = []
    path = set(map(id, critical_path(root)))

    def fmt(node, depth):
        start = (_t_start(node) - t0) * unit_scale
        end = _t_end(node)
        span_txt = (
            f"+{start:.3f}{unit} .. +{(end - t0) * unit_scale:.3f}{unit}"
            if end is not None
            else f"+{start:.3f}{unit} .. (open)"
        )
        attrs = _attrs(node)
        shown = {
            k: attrs[k]
            for k in ("qid", "k", "shard", "replica", "queue_ms", "service_ms", "shed")
            if k in attrs
        }
        extra = f" {shown}" if shown else ""
        star = " *" if id(node) in path and depth > 0 else ""
        lines.append(
            f"{'  ' * depth}{_name(node)}  {span_txt}{_mark(node)}{extra}{star}"
        )
        for c in _children(node):
            fmt(c, depth + 1)

    fmt(root, 0)
    latency = ((_t_end(root) or t0) - t0) * unit_scale
    cov = critical_path_coverage(root)
    lines.append("")
    lines.append(
        f"request {rid}: latency {latency:.3f}{unit}, critical path "
        f"(* above) covers {100.0 * cov:.1f}% of it"
    )
    return "\n".join(lines)
