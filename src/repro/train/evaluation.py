"""Model evaluation on the full graph.

The graph-sampling design trains on small subgraphs but evaluates like any
GCN: one full-graph forward pass with the trained weights (the subgraph GCN
and the full GCN share weights — Section III-A), then F1 on the requested
split. The aggregator for the full graph is built once and reused across
evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.datasets import Dataset
from ..kernels import ops as kernel_ops
from ..nn.loss import make_loss
from ..nn.metrics import accuracy, f1_macro, f1_micro
from ..nn.network import GCN
from ..propagation.spmm import MeanAggregator

__all__ = ["EvalResult", "Evaluator"]


@dataclass(frozen=True)
class EvalResult:
    loss: float
    f1_micro: float
    f1_macro: float
    accuracy: float
    split: str


class Evaluator:
    """Full-graph evaluation bound to one dataset.

    Parameters
    ----------
    dataset:
        Evaluation data; the aggregator over its full graph is built once.
    feature_chunk:
        When set, the forward pass processes features ``feature_chunk``
        columns at a time through the *first* layer's aggregation (the
        memory peak on wide-attribute graphs like Reddit's 602 dims). The
        chunking reuses Algorithm 6's partitioned propagator, so results
        are bitwise identical to the unchunked pass.
    dtype:
        When set, features are cast once at construction (the fast
        policy evaluates in float32); ``None`` keeps the dataset dtype.
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        feature_chunk: int | None = None,
        dtype=None,
    ) -> None:
        if feature_chunk is not None and feature_chunk < 1:
            raise ValueError("feature_chunk must be >= 1 when set")
        self.dataset = dataset
        self.feature_chunk = feature_chunk
        self._features = (
            dataset.features
            if dtype is None
            else dataset.features.astype(dtype, copy=False)
        )
        self._aggregator = MeanAggregator(dataset.graph)
        self._loss = make_loss(dataset.task)

    def _split_indices(self, split: str) -> np.ndarray:
        if split == "train":
            return self.dataset.train_idx
        if split == "val":
            return self.dataset.val_idx
        if split == "test":
            return self.dataset.test_idx
        raise ValueError(f"unknown split {split!r}")

    def _forward(self, model: GCN) -> np.ndarray:
        if self.feature_chunk is None:
            return model.forward(self._features, self._aggregator, train=False)
        # Chunk only the first aggregation (the widest, and the memory
        # peak); subsequent layers operate on hidden dims and run
        # unchunked. Column chunking commutes with the row-wise spmm, so
        # results match the unchunked pass exactly.
        feats = self._features
        agg = self._aggregator
        first = model.layers[0]
        chunks = []
        for lo in range(0, feats.shape[1], self.feature_chunk):
            chunks.append(agg.forward(feats[:, lo : lo + self.feature_chunk]))
        h_agg = np.concatenate(chunks, axis=1)
        z_neigh = kernel_ops.gemm(h_agg, first.params["W_neigh"])
        z_self = kernel_ops.gemm(feats, first.params["W_self"])
        if first.use_bias:
            z_neigh = z_neigh + first.params["b_neigh"]
            z_self = z_self + first.params["b_self"]
        z = (
            np.concatenate([z_neigh, z_self], axis=1)
            if first.concat
            else z_neigh + z_self
        )
        from ..nn.activations import relu

        h = relu(z) if first.activation == "relu" else z
        for layer in model.layers[1:]:
            h = layer.forward(h, agg, train=False)
        return model.head.forward(h, train=False)

    def evaluate(self, model: GCN, split: str = "val") -> EvalResult:
        """Full-graph forward pass + metrics on the requested split."""
        idx = self._split_indices(split)
        logits = self._forward(model)[idx]
        labels = self.dataset.labels[idx]
        preds = self._loss.predict(logits)
        return EvalResult(
            loss=self._loss.forward(logits, labels),
            f1_micro=f1_micro(labels, preds, self.dataset.num_classes),
            f1_macro=f1_macro(labels, preds, self.dataset.num_classes),
            accuracy=accuracy(labels, preds),
            split=split,
        )
