"""Training configuration for the graph-sampling GCN."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kernels.autotune import PLAN_MODES
from ..kernels.backends import get_backend
from ..kernels.policy import resolve_policy
from ..parallel.machine import MachineSpec, xeon_40core
from ..sampling.dashboard import ENGINES
from ..sampling.zoo import FAMILIES

__all__ = ["TrainConfig", "LOSS_NORMS"]

#: Loss-normalization modes: ``"none"`` (plain batch mean, the seed
#: behavior) or ``"saint"`` (GraphSAINT ``1/(n p_v)`` weights from
#: :mod:`repro.sampling.norm`).
LOSS_NORMS = ("none", "saint")


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters of Algorithm 5 training.

    Attributes
    ----------
    hidden_dims:
        Per-branch hidden sizes, one per GCN layer; the paper evaluates
        2-layer models with 512 and 1024, and up to 3 layers in Table II.
    frontier_size, budget, eta, max_entries_per_vertex:
        Frontier-sampler parameters (``m``, ``n``, enlargement factor and
        the skew cap of Section VI-C2).
    p_inter, p_intra:
        Scheduler parallelism: sampler instances and AVX lanes per
        instance (Section IV-C; the paper's platform uses 40 x 8).
    cores:
        Worker count used for training-phase cost simulation.
    dtype_policy:
        Kernel dtype policy name (see :mod:`repro.kernels.policy`):
        ``"reference"`` (float64, no workspace — bit-identical to the
        seed implementation) or ``"fast"`` (float32 + workspace reuse).
    spmm_backend:
        Kernel-registry SpMM backend for feature propagation
        (``"scipy"`` or ``"numpy"``).
    kernel_plan:
        Kernel dispatch planning mode (see
        :mod:`repro.kernels.autotune`): ``"fast"`` (static default
        dispatch, the pre-autotune behavior), ``"reference"`` (pinned
        bit-identical plans) or ``"auto"`` (per-shape-class plans
        microbenchmark-tuned at first use and persisted per environment
        fingerprint). The trainer scopes the mode to its own compute
        loops, so concurrent code is unaffected.
    sampler_engine:
        Sampler execution engine: ``"fast"`` (vectorized) or
        ``"reference"`` (scalar oracle); forwarded to whichever sampler
        family is selected (see :mod:`repro.sampling.dashboard` and the
        zoo modules).
    sampler_family:
        Which subgraph sampler the trainer builds
        (:data:`repro.sampling.zoo.FAMILIES`): ``"dashboard"`` (the
        paper's frontier sampler, default), ``"rw"``, ``"edge"`` or
        ``"edge-indp"``. The configured ``budget`` is mapped onto each
        family's native parameter by
        :func:`repro.sampling.zoo.make_sampler`.
    walk_depth:
        Random-walk depth ``h`` (``sampler_family="rw"`` only).
    loss_norm:
        ``"none"`` (plain batch-mean loss, the seed behavior) or
        ``"saint"`` — apply the GraphSAINT loss-normalization weights
        ``lambda_v = 1/(n p_v)`` so every sampler family's minibatch
        loss is an unbiased full-graph estimate.
    norm_subgraphs:
        Pre-sampling passes used to estimate empirical inclusion
        probabilities when ``loss_norm="saint"`` and the family has no
        closed form (dashboard, rw).
    prefetch_depth:
        When > 0, subgraphs are sampled ahead of the trainer through
        :class:`repro.sampling.pipeline.PrefetchingSubgraphPool` with
        this many subgraphs in flight; 0 keeps the simulated-clock
        :class:`~repro.sampling.scheduler.SubgraphPool`.
    prefetch_workers:
        Producer parallelism of the prefetch pipeline (1 = one
        background thread, > 1 = a process pool).
    epochs:
        One epoch processes ``ceil(|V_train| / budget)`` subgraph batches
        (the paper's definition of an epoch as one full traversal).
    """

    hidden_dims: tuple[int, ...] = (128, 128)
    frontier_size: int = 100
    budget: int = 500
    eta: float = 2.0
    max_entries_per_vertex: int | None = None
    lr: float = 0.01
    weight_decay: float = 0.0
    dropout: float = 0.0
    concat: bool = True
    epochs: int = 10
    eval_every: int = 1
    # Early stopping: end training when validation F1-micro has not
    # improved for this many consecutive evaluations (None disables).
    patience: int | None = None
    # When True, the model is restored to the weights of its best
    # validation evaluation at the end of train().
    restore_best: bool = False
    p_inter: int = 1
    p_intra: int = 1
    cores: int = 1
    seed: int = 0
    dtype_policy: str = "reference"
    spmm_backend: str = "scipy"
    kernel_plan: str = "fast"
    sampler_engine: str = "fast"
    sampler_family: str = "dashboard"
    walk_depth: int = 3
    loss_norm: str = "none"
    norm_subgraphs: int = 24
    prefetch_depth: int = 0
    prefetch_workers: int = 1
    machine: MachineSpec = field(default_factory=xeon_40core)

    def __post_init__(self) -> None:
        if not self.hidden_dims:
            raise ValueError("need at least one hidden layer")
        if self.frontier_size <= 0 or self.budget < self.frontier_size:
            raise ValueError("invalid sampler sizes")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if min(self.p_inter, self.p_intra, self.cores) <= 0:
            raise ValueError("parallelism parameters must be positive")
        if self.patience is not None and self.patience < 1:
            raise ValueError("patience must be >= 1 when set")
        if self.prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")
        if self.prefetch_workers < 1:
            raise ValueError("prefetch_workers must be >= 1")
        # Fail fast on typos; resolve_policy/get_backend raise ValueError
        # naming the valid choices.
        resolve_policy(self.dtype_policy)
        get_backend(self.spmm_backend)
        if self.kernel_plan not in PLAN_MODES:
            raise ValueError(
                f"kernel_plan must be one of {PLAN_MODES}, "
                f"got {self.kernel_plan!r}"
            )
        if self.sampler_engine not in ENGINES:
            raise ValueError(
                f"sampler_engine must be one of {ENGINES}, "
                f"got {self.sampler_engine!r}"
            )
        if self.sampler_family not in FAMILIES:
            raise ValueError(
                f"sampler_family must be one of {FAMILIES}, "
                f"got {self.sampler_family!r}"
            )
        if self.walk_depth < 1:
            raise ValueError("walk_depth must be >= 1")
        if self.loss_norm not in LOSS_NORMS:
            raise ValueError(
                f"loss_norm must be one of {LOSS_NORMS}, got {self.loss_norm!r}"
            )
        if self.norm_subgraphs < 1:
            raise ValueError("norm_subgraphs must be >= 1")
