"""Model checkpointing: save/load GCN weights as ``.npz`` archives.

Keeps training runs resumable and lets the examples hand trained models
between scripts. The archive stores every parameter of
:meth:`repro.nn.GCN.state_dict` plus a small metadata header (architecture
dims) that is validated on load, so loading into a mismatched architecture
fails loudly instead of silently truncating.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from ..nn.network import GCN

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_metadata"]

_META_KEY = "__meta__"


def _architecture_of(model: GCN) -> dict[str, object]:
    return {
        "in_dim": model.in_dim,
        "num_classes": model.num_classes,
        "hidden_dims": [layer.out_dim for layer in model.layers],
        "concat": all(layer.concat for layer in model.layers),
        "num_parameters": model.num_parameters(),
    }


def save_checkpoint(model: GCN, path: str | pathlib.Path) -> pathlib.Path:
    """Write the model's parameters and architecture metadata to ``path``.

    The ``.npz`` suffix is appended when missing (numpy's behaviour made
    explicit). Returns the final path.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays = dict(model.state_dict())
    meta = json.dumps(_architecture_of(model))
    arrays[_META_KEY] = np.frombuffer(meta.encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def checkpoint_metadata(path: str | pathlib.Path) -> dict[str, object]:
    """Read just the architecture header of a checkpoint."""
    with np.load(path) as data:
        if _META_KEY not in data:
            raise ValueError(f"{path} is not a repro checkpoint (missing metadata)")
        return json.loads(bytes(data[_META_KEY]).decode("utf-8"))


def load_checkpoint(model: GCN, path: str | pathlib.Path) -> GCN:
    """Load parameters into ``model`` in place; returns it for chaining.

    Raises ``ValueError`` when the checkpoint's architecture does not
    match the model's.
    """
    meta = checkpoint_metadata(path)
    expected = _architecture_of(model)
    mismatches = {
        k: (meta.get(k), v) for k, v in expected.items() if meta.get(k) != v
    }
    if mismatches:
        raise ValueError(
            f"checkpoint architecture mismatch: {mismatches} "
            "(checkpoint value, model value)"
        )
    with np.load(path) as data:
        state = {k: data[k] for k in data.files if k != _META_KEY}
    model.load_state_dict(state)
    return model
