"""Vertex-embedding utilities — the paper's actual output artifact.

"Taking an unstructured, attributed graph as input, the embedding process
outputs structured vectors which capture information of the original
graph" (Section I). This module extracts those vectors from a trained GCN
and provides the downstream operations the paper motivates embeddings
with: nearest-neighbor retrieval (content recommendation) and clustering
quality against labels.
"""

from __future__ import annotations

import numpy as np

from ..graphs.datasets import Dataset
from ..nn.network import GCN
from ..propagation.spmm import MeanAggregator

__all__ = [
    "compute_embeddings",
    "normalize_embeddings",
    "cosine_nearest_neighbors",
    "label_homogeneity",
    "embedding_report",
]


def compute_embeddings(model: GCN, dataset: Dataset) -> np.ndarray:
    """Final-layer embeddings ``H^(L)`` for every vertex of the dataset."""
    aggregator = MeanAggregator(dataset.graph)
    return model.embeddings(dataset.features, aggregator)


def normalize_embeddings(embeddings: np.ndarray) -> np.ndarray:
    """L2-normalize rows (zero rows stay zero)."""
    norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
    return np.divide(
        embeddings, norms, out=np.zeros_like(embeddings), where=norms > 0
    )


def cosine_nearest_neighbors(
    embeddings: np.ndarray, queries: np.ndarray, k: int = 10
) -> tuple[np.ndarray, np.ndarray]:
    """Top-``k`` cosine neighbors of each query vertex.

    Returns ``(indices, similarities)`` of shape ``(len(queries), k)``;
    each query's own row is excluded.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    normed = normalize_embeddings(embeddings)
    sims = normed[queries] @ normed.T
    sims[np.arange(queries.shape[0]), queries] = -np.inf
    k = min(k, embeddings.shape[0] - 1)
    idx = np.argpartition(-sims, kth=k - 1, axis=1)[:, :k]
    row = np.arange(queries.shape[0])[:, None]
    order = np.argsort(-sims[row, idx], axis=1)
    idx = idx[row, order]
    return idx, sims[row, idx]


def label_homogeneity(
    embeddings: np.ndarray,
    labels: np.ndarray,
    *,
    k: int = 10,
    sample: int | None = 256,
    rng: np.random.Generator | None = None,
) -> float:
    """Mean fraction of a vertex's k nearest neighbors sharing its label.

    For multi-label matrices, "sharing" means Jaccard similarity of label
    sets >= 0.5. A useful embedding scores far above the label-frequency
    base rate; this is the quantitative check behind the retrieval demo.
    """
    n = embeddings.shape[0]
    if sample is not None and sample < n:
        rng = rng or np.random.default_rng(0)
        queries = rng.choice(n, size=sample, replace=False)
    else:
        queries = np.arange(n)
    idx, _ = cosine_nearest_neighbors(embeddings, queries, k=k)
    labels = np.asarray(labels)
    if labels.ndim == 1:
        same = labels[idx] == labels[queries][:, None]
        return float(same.mean())
    q = labels[queries][:, None, :]
    nb = labels[idx]
    inter = (q * nb).sum(axis=2)
    union = np.maximum(q, nb).sum(axis=2)
    jac = np.divide(inter, union, out=np.zeros_like(inter), where=union > 0)
    return float((jac >= 0.5).mean())


def embedding_report(
    model: GCN, dataset: Dataset, *, k: int = 10, seed: int = 0
) -> dict[str, float]:
    """Summary quality metrics of a model's embeddings on a dataset."""
    emb = compute_embeddings(model, dataset)
    rng = np.random.default_rng(seed)
    homog = label_homogeneity(emb, dataset.labels, k=k, rng=rng)
    # Base rate: homogeneity of random neighbor assignment.
    perm = rng.permutation(dataset.num_vertices)
    base = label_homogeneity(
        emb[perm], dataset.labels, k=k, rng=np.random.default_rng(seed)
    )
    return {
        "embedding_dim": float(emb.shape[1]),
        "label_homogeneity@k": homog,
        "shuffled_base_rate": base,
        "lift": homog / base if base > 0 else float("inf"),
    }
