"""Vertex-embedding utilities — the paper's actual output artifact.

"Taking an unstructured, attributed graph as input, the embedding process
outputs structured vectors which capture information of the original
graph" (Section I). This module extracts those vectors from a trained GCN
and provides the downstream operations the paper motivates embeddings
with: nearest-neighbor retrieval (content recommendation) and clustering
quality against labels.
"""

from __future__ import annotations

import numpy as np

from ..graphs.datasets import Dataset
from ..nn.network import GCN
from ..propagation.spmm import MeanAggregator
from ..serving.index import BruteForceIndex

__all__ = [
    "compute_embeddings",
    "normalize_embeddings",
    "cosine_nearest_neighbors",
    "label_homogeneity",
    "embedding_report",
]


def compute_embeddings(model: GCN, dataset: Dataset) -> np.ndarray:
    """Final-layer embeddings ``H^(L)`` for every vertex of the dataset."""
    aggregator = MeanAggregator(dataset.graph)
    return model.embeddings(dataset.features, aggregator)


def normalize_embeddings(embeddings: np.ndarray) -> np.ndarray:
    """L2-normalize rows (zero rows stay zero)."""
    norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
    return np.divide(
        embeddings, norms, out=np.zeros_like(embeddings), where=norms > 0
    )


def cosine_nearest_neighbors(
    embeddings: np.ndarray,
    queries: np.ndarray,
    k: int = 10,
    *,
    chunk_size: int | None = 1024,
) -> tuple[np.ndarray, np.ndarray]:
    """Top-``k`` cosine neighbors of each query vertex.

    Returns ``(indices, similarities)`` of shape ``(len(queries), k)``;
    each query's own row is excluded. Queries are scanned in blocks of
    ``chunk_size`` rows so peak memory is ``O(chunk_size * n)`` instead
    of ``O(len(queries) * n)``; the chunking does not change results.

    Delegates to :class:`repro.serving.index.BruteForceIndex` — the same
    exact-search code path the serving subsystem uses as its oracle.
    """
    queries = np.asarray(queries, dtype=np.int64)
    index = BruteForceIndex(embeddings, chunk_size=chunk_size)
    return index.search_ids(queries, k)


def label_homogeneity(
    embeddings: np.ndarray,
    labels: np.ndarray,
    *,
    k: int = 10,
    sample: int | None = 256,
    rng: np.random.Generator | None = None,
) -> float:
    """Mean fraction of a vertex's k nearest neighbors sharing its label.

    For multi-label matrices, "sharing" means Jaccard similarity of label
    sets >= 0.5. A useful embedding scores far above the label-frequency
    base rate; this is the quantitative check behind the retrieval demo.
    """
    n = embeddings.shape[0]
    if sample is not None and sample < n:
        rng = rng or np.random.default_rng(0)
        queries = rng.choice(n, size=sample, replace=False)
    else:
        queries = np.arange(n)
    idx, _ = cosine_nearest_neighbors(embeddings, queries, k=k)
    labels = np.asarray(labels)
    if labels.ndim == 1:
        same = labels[idx] == labels[queries][:, None]
        return float(same.mean())
    q = labels[queries][:, None, :]
    nb = labels[idx]
    inter = (q * nb).sum(axis=2)
    union = np.maximum(q, nb).sum(axis=2)
    jac = np.divide(inter, union, out=np.zeros_like(inter), where=union > 0)
    return float((jac >= 0.5).mean())


def embedding_report(
    model: GCN, dataset: Dataset, *, k: int = 10, seed: int = 0
) -> dict[str, float]:
    """Summary quality metrics of a model's embeddings on a dataset."""
    emb = compute_embeddings(model, dataset)
    rng = np.random.default_rng(seed)
    homog = label_homogeneity(emb, dataset.labels, k=k, rng=rng)
    # Base rate: homogeneity of random neighbor assignment.
    perm = rng.permutation(dataset.num_vertices)
    base = label_homogeneity(
        emb[perm], dataset.labels, k=k, rng=np.random.default_rng(seed)
    )
    return {
        "embedding_dim": float(emb.shape[1]),
        "label_homogeneity@k": homog,
        "shuffled_base_rate": base,
        "lift": homog / base if base > 0 else float("inf"),
    }
