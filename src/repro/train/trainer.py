"""The graph-sampling GCN trainer (Algorithms 1 & 5).

Every iteration: pop a subgraph from the pool (refilling with ``p_inter``
parallel sampler instances when empty), build a *complete* GCN on it, run
forward + backward, and take an Adam step. Per the paper, training
restricts to the training graph — the subgraph sampler never sees
validation or test vertices — while evaluation runs a full-graph forward
pass with the shared weights.

Timing is tracked on two clocks:

* **wall seconds** — real measured Python time, used by the Figure 2
  time-accuracy comparison (every method in this repo runs in the same
  numpy framework, so wall-clock ratios are meaningful);
* **simulated time** — the cost-model clock: sampling from the pool's
  metered fills, feature propagation from the partitioned propagator's
  reports, and weight application from the GEMM flop count under the
  MKL-like Amdahl model. These regenerate Figures 3 and 4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..analysis.speedup import gemm_simulated_time
from ..graphs.csr import CSRGraph
from ..graphs.datasets import Dataset
from ..kernels import accounting, autotune
from ..kernels.policy import resolve_policy
from ..kernels.workspace import Workspace
from ..obs import is_enabled as obs_enabled
from ..obs import metrics as obs_metrics
from ..obs.trace import span
from ..nn.loss import make_loss
from ..nn.network import GCN
from ..nn.optim import Adam
from ..parallel.trace import ExecutionTrace
from ..propagation.feature_prop import PartitionedPropagator
from ..sampling.zoo import make_sampler, norm_coefficients
from ..sampling.pipeline import PrefetchingSubgraphPool
from ..sampling.scheduler import SubgraphPool
from .config import TrainConfig
from .evaluation import EvalResult, Evaluator

__all__ = ["EpochRecord", "TrainResult", "GraphSamplingTrainer"]

PHASE_SAMPLING = "sampling"
PHASE_FEATURE_PROP = "feature_propagation"
PHASE_WEIGHT_APP = "weight_application"


@dataclass(frozen=True)
class EpochRecord:
    """Progress snapshot at the end of one epoch."""

    epoch: int
    train_loss: float
    wall_seconds_total: float
    sim_time_total: float
    val: EvalResult | None


@dataclass(frozen=True)
class IterationMetrics:
    """Raw metered quantities of one training iteration.

    Stored so scaling experiments can *re-price* a single training run at
    any core count / lane width without re-running it: sampler stats feed
    :func:`repro.sampling.cost.simulated_sampler_time`, propagation
    reports re-evaluate at any core count, and the GEMM flop count re-
    evaluates under the Amdahl model.
    """

    sampler_stats: dict[str, float]
    prop_reports: tuple
    gemm_flops: float
    subgraph_vertices: int
    subgraph_edges: int
    spmm_flops: float = 0.0


@dataclass
class TrainResult:
    """Everything a training run produced."""

    epochs: list[EpochRecord] = field(default_factory=list)
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    iterations: int = 0
    iteration_metrics: list[IterationMetrics] = field(default_factory=list)

    @property
    def final_val_f1(self) -> float:
        for rec in reversed(self.epochs):
            if rec.val is not None:
                return rec.val.f1_micro
        return float("nan")

    def time_to_accuracy(self, threshold: float) -> float | None:
        """Wall seconds until validation F1-micro first reached threshold."""
        for rec in self.epochs:
            if rec.val is not None and rec.val.f1_micro >= threshold:
                return rec.wall_seconds_total
        return None

    def sim_time_by_phase(self) -> dict[str, float]:
        """Summed simulated time per training phase."""
        return self.trace.totals_by_phase()


class GraphSamplingTrainer:
    """Minibatch GCN training by graph sampling (the paper's method).

    Parameters
    ----------
    dataset, config:
        Data and hyperparameters.
    sampler:
        Optional override of the subgraph sampler (built on
        ``self.train_graph``); defaults to the Dashboard frontier sampler.
        Used by the sampler-comparison ablation (the paper's future-work
        direction of supporting a wider class of sampling algorithms).
    """

    def __init__(
        self,
        dataset: Dataset,
        config: TrainConfig,
        *,
        sampler=None,
    ) -> None:
        self.dataset = dataset
        self.config = config
        self.rng = np.random.default_rng(config.seed)

        # Training graph: the subgraph induced on the training split
        # (standard transductive-restricted setup shared by the baselines).
        self.train_graph, self.train_vmap = dataset.graph.induced_subgraph(
            dataset.train_idx
        )
        self._patch_isolated_vertices()
        # Kernel regime: the reference policy keeps float64 and no
        # workspace (bit-identical to the seed implementation); the fast
        # policy casts once here and shares a buffer arena across layers.
        self.policy = resolve_policy(config.dtype_policy)
        self.workspace = Workspace() if self.policy.use_workspace else None
        self.train_features = self.policy.cast(dataset.features[self.train_vmap])
        self.train_labels = dataset.labels[self.train_vmap]

        budget = min(config.budget, self.train_graph.num_vertices)
        frontier = min(config.frontier_size, budget)
        if sampler is not None:
            self.sampler = sampler
        else:
            # The zoo factory: config.sampler_family selects the sampler,
            # the shared budget is mapped onto each family's native knob
            # (the default "dashboard" path builds exactly the frontier
            # sampler this constructor always built).
            self.sampler = make_sampler(
                config.sampler_family,
                self.train_graph,
                budget=budget,
                frontier_size=frontier,
                engine=config.sampler_engine,
                eta=config.eta,
                max_entries_per_vertex=config.max_entries_per_vertex,
                vector_lanes=config.machine.vector_lanes,
                walk_depth=config.walk_depth,
            )
        # GraphSAINT loss normalization: per-vertex weights 1/(n p_v)
        # (closed-form for the edge families, empirical pre-sampling
        # otherwise) make each family's minibatch loss an unbiased
        # full-graph estimate, so the families train to comparable F1.
        self.norm = None
        self._loss_weights = None
        if config.loss_norm == "saint":
            self.norm = norm_coefficients(
                self.sampler,
                num_subgraphs=config.norm_subgraphs,
                seed=config.seed,
            )
            self._loss_weights = self.norm.loss_weight
        if config.prefetch_depth > 0:
            # Sampler-ahead pipeline: subgraphs are produced in the
            # background while the trainer computes (real overlap), and
            # stall/staleness telemetry flows through obs counters.
            self.pool = PrefetchingSubgraphPool(
                self.sampler,
                config.machine,
                depth=config.prefetch_depth,
                workers=config.prefetch_workers,
                p_intra=config.p_intra,
                seed=config.seed,
            )
        else:
            self.pool = SubgraphPool(
                self.sampler,
                config.machine,
                p_inter=config.p_inter,
                p_intra=config.p_intra,
                rng=self.rng,
            )
        self.model = GCN(
            dataset.features.shape[1],
            list(config.hidden_dims),
            dataset.num_classes,
            concat=config.concat,
            dropout=config.dropout,
            seed=config.seed,
            dtype=self.policy.dtype,
            workspace=self.workspace,
        )
        self.loss = make_loss(dataset.task)
        self.optimizer = Adam(lr=config.lr, weight_decay=config.weight_decay)
        self.evaluator = Evaluator(
            dataset,
            dtype=None if self.policy.dtype == np.float64 else self.policy.dtype,
        )
        self.batches_per_epoch = max(
            1, -(-self.train_graph.num_vertices // budget)
        )

    def close(self) -> None:
        """Release sampler-pipeline resources (idempotent).

        Only meaningful with ``prefetch_depth > 0``, where the pool owns a
        background executor; the simulated-clock pool has nothing to
        release. Training remains usable as a context manager either way.
        """
        closer = getattr(self.pool, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "GraphSamplingTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _patch_isolated_vertices(self) -> None:
        """The induced training graph can strand vertices; give each a
        random training-graph neighbor so the frontier sampler's min-degree
        precondition holds (mirrors the ensure_min_degree preprocessing the
        dataset generators apply to the full graph)."""
        from ..graphs.generators import ensure_min_degree

        if np.any(self.train_graph.degrees == 0):
            self.train_graph = ensure_min_degree(self.train_graph, 1, rng=self.rng)

    # ------------------------------------------------------------------
    def train_iteration(self, iteration: int, result: TrainResult) -> float:
        """One Algorithm-5 iteration; returns the minibatch loss.

        When :mod:`repro.obs` is enabled, the iteration records a span
        tree — ``trainer.iteration`` with children ``trainer.sample``
        (pool pop + minibatch gather), ``trainer.forward`` and
        ``trainer.backward`` (which includes the optimizer step); the
        ``prop.forward``/``prop.backward`` spans of the partitioned
        propagator nest under forward/backward.
        """
        cfg = self.config
        # Scope the kernel plan mode to this iteration's compute: under
        # "auto" every gemm/spmm resolves through the plan cache, and an
        # explicit spmm_backend would override plan resolution — so the
        # propagator passes backend=None and lets the planner choose.
        with autotune.planning(cfg.kernel_plan), span("trainer.iteration") as it_sp:
            with span("trainer.sample") as s_sp:
                subgraph, samp_time = self.pool.get()
                propagator = PartitionedPropagator(
                    subgraph.graph,
                    cfg.machine,
                    cores=cfg.cores,
                    backend=None if cfg.kernel_plan == "auto" else cfg.spmm_backend,
                    workspace=self.workspace,
                )
                feats = self.train_features[subgraph.vertex_map]
                labels = self.train_labels[subgraph.vertex_map]
                loss_w = (
                    self._loss_weights[subgraph.vertex_map]
                    if self._loss_weights is not None
                    else None
                )
            result.trace.record(PHASE_SAMPLING, samp_time, iteration)

            self.model.zero_grad()
            # Meter the iteration's actual kernel dispatches; the captured
            # gemm flop count prices the weight-application phase below
            # (it equals the old analytic 3x-forward count, now measured
            # at the one place that runs the kernels).
            with accounting.capture() as kernel_costs:
                with span("trainer.forward"):
                    logits = self.model.forward(feats, propagator, train=True)
                    batch_loss = self.loss.forward(logits, labels, loss_w)
                with span("trainer.backward"):
                    self.model.backward(
                        self.loss.backward(logits, labels, loss_w)
                    )
                    self.optimizer.step(self.model.parameter_groups())

            gemm_flops = kernel_costs.gemm_flops
            gemm_sim = gemm_simulated_time(gemm_flops, cfg.machine, cores=cfg.cores)
            result.trace.record(
                PHASE_FEATURE_PROP,
                propagator.total_simulated_time(cores=cfg.cores),
                iteration,
            )
            result.trace.record(PHASE_WEIGHT_APP, gemm_sim, iteration)
            result.iteration_metrics.append(
                IterationMetrics(
                    sampler_stats=dict(subgraph.stats),
                    prop_reports=tuple(propagator.reports),
                    gemm_flops=gemm_flops,
                    subgraph_vertices=subgraph.num_vertices,
                    subgraph_edges=subgraph.graph.num_edges,
                    spmm_flops=kernel_costs.spmm_flops,
                )
            )
            if obs_enabled():
                s_sp.add_sim_time(samp_time)
                it_sp.add_sim_time(gemm_sim)
                it_sp.set(
                    iteration=iteration,
                    vertices=subgraph.num_vertices,
                    edges=subgraph.graph.num_edges,
                )
                obs_metrics.inc("trainer.iterations")
        if obs_enabled():
            # Raw per-iteration wall samples: what the bench-record /
            # bench-gate pipeline runs its statistical tests on.
            duration = getattr(it_sp, "duration", None)
            if duration is not None:
                obs_metrics.observe("trainer.iteration_seconds", duration)
        return batch_loss

    def train(self, *, epochs: int | None = None) -> TrainResult:
        """Run full training; returns per-epoch records and the time trace."""
        cfg = self.config
        total_epochs = epochs if epochs is not None else cfg.epochs
        result = TrainResult()
        wall_total = 0.0
        best_f1 = -np.inf
        best_state: dict[str, np.ndarray] | None = None
        stale_evals = 0
        for epoch in range(total_epochs):
            with span("trainer.epoch") as ep_sp:
                t0 = time.perf_counter()
                losses = []
                for _ in range(self.batches_per_epoch):
                    losses.append(self.train_iteration(result.iterations, result))
                    result.iterations += 1
                wall_total += time.perf_counter() - t0
                if obs_enabled():
                    ep_sp.set(epoch=epoch)
                if (epoch + 1) % cfg.eval_every == 0:
                    with autotune.planning(cfg.kernel_plan), span("trainer.eval"):
                        val = self.evaluator.evaluate(self.model, "val")
                else:
                    val = None
            result.epochs.append(
                EpochRecord(
                    epoch=epoch,
                    train_loss=float(np.mean(losses)),
                    wall_seconds_total=wall_total,
                    sim_time_total=result.trace.total(),
                    val=val,
                )
            )
            if val is not None:
                if val.f1_micro > best_f1:
                    best_f1 = val.f1_micro
                    stale_evals = 0
                    if cfg.restore_best:
                        best_state = self.model.state_dict()
                else:
                    stale_evals += 1
                    if cfg.patience is not None and stale_evals >= cfg.patience:
                        break
        if cfg.restore_best and best_state is not None:
            self.model.load_state_dict(best_state)
        return result
