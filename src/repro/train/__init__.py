"""Training: configuration, the GS-GCN trainer, full-graph evaluation."""

from .checkpoint import checkpoint_metadata, load_checkpoint, save_checkpoint
from .config import TrainConfig
from .embedding import (
    compute_embeddings,
    cosine_nearest_neighbors,
    embedding_report,
    label_homogeneity,
    normalize_embeddings,
)
from .evaluation import EvalResult, Evaluator
from .trainer import (
    PHASE_FEATURE_PROP,
    PHASE_SAMPLING,
    PHASE_WEIGHT_APP,
    EpochRecord,
    GraphSamplingTrainer,
    IterationMetrics,
    TrainResult,
)

__all__ = [
    "TrainConfig",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_metadata",
    "compute_embeddings",
    "normalize_embeddings",
    "cosine_nearest_neighbors",
    "label_homogeneity",
    "embedding_report",
    "Evaluator",
    "EvalResult",
    "GraphSamplingTrainer",
    "TrainResult",
    "EpochRecord",
    "IterationMetrics",
    "PHASE_SAMPLING",
    "PHASE_FEATURE_PROP",
    "PHASE_WEIGHT_APP",
]
