"""Embedding-serving subsystem: the paper's downstream workload, built out.

Section I motivates graph embedding with serving-time applications
("content recommendation" by nearest-neighbor retrieval); the ROADMAP's
north star is a system that serves heavy traffic. This package is that
layer: it takes a trained model's embedding matrix and serves k-NN /
vertex-embedding requests under a simulated request stream, with

* :mod:`repro.serving.index` — exact and cluster-pruned ANN indexes plus
  the recall@k evaluation helper;
* :mod:`repro.serving.batcher` — the micro-batching admission queue;
* :mod:`repro.serving.cache` — the generation-stamped LRU result cache;
* :mod:`repro.serving.server` — the orchestrator with load shedding and
  deadline-based ANN degradation;
* :mod:`repro.serving.metrics` — latency percentiles, throughput,
  hit-rate, recall;
* :mod:`repro.serving.workload` — Zipf-skewed Poisson query traces.

``python -m repro.cli serve-bench`` and ``benchmarks/bench_serving.py``
replay the same trace through naive / batched / batched+cached+ANN
configurations and print a paper-style comparison table.
"""

from .batcher import MicroBatcher, Request
from .cache import LRUCache
from .index import (
    BruteForceIndex,
    ClusterIndex,
    build_index,
    l2_normalize_rows,
    recall_at_k,
)
from .metrics import LatencyHistogram, ServingMetrics
from .server import EmbeddingServer, ServerConfig, TraceReplay
from .workload import QueryTrace, zipf_trace

__all__ = [
    "BruteForceIndex",
    "ClusterIndex",
    "build_index",
    "l2_normalize_rows",
    "recall_at_k",
    "MicroBatcher",
    "Request",
    "LRUCache",
    "LatencyHistogram",
    "ServingMetrics",
    "EmbeddingServer",
    "ServerConfig",
    "TraceReplay",
    "QueryTrace",
    "zipf_trace",
]
