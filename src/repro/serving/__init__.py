"""Embedding-serving subsystem: the paper's downstream workload, built out.

Section I motivates graph embedding with serving-time applications
("content recommendation" by nearest-neighbor retrieval); the ROADMAP's
north star is a system that serves heavy traffic. This package is that
layer: it takes a trained model's embedding matrix and serves k-NN /
vertex-embedding requests under a simulated request stream, with

* :mod:`repro.serving.index` — exact and cluster-pruned ANN indexes plus
  the recall@k evaluation helper;
* :mod:`repro.serving.batcher` — the micro-batching admission queue;
* :mod:`repro.serving.cache` — the generation-stamped LRU result cache;
* :mod:`repro.serving.server` — the orchestrator with load shedding and
  deadline-based ANN degradation;
* :mod:`repro.serving.metrics` — latency percentiles, throughput,
  hit-rate, recall;
* :mod:`repro.serving.workload` — Zipf-skewed Poisson query traces,
  plus bursty and diurnal arrival processes;
* :mod:`repro.serving.router` — centroid shard routing, least-
  outstanding replica dispatch, hedged-request policy;
* :mod:`repro.serving.upsert` — streaming embedding-slab producer;
* :mod:`repro.serving.cluster` — the sharded, replicated
  :class:`~repro.serving.cluster.ClusterServer` composing all of the
  above on the same simulated clock.

``python -m repro.cli serve-bench`` and ``benchmarks/bench_serving.py``
replay the same trace through naive / batched / batched+cached+ANN
configurations and print a paper-style comparison table;
``serve-bench --cluster`` runs the sharded cluster benchmark
(``benchmarks/bench_serving_cluster.py``).
"""

from .batcher import MicroBatcher, Request
from .cache import GenerationalCache, LRUCache
from .cluster import (
    ClusterConfig,
    ClusterReplay,
    ClusterServer,
    ShardedIndex,
    partition_vertices,
)
from .index import (
    BruteForceIndex,
    ClusterIndex,
    build_index,
    l2_normalize_rows,
    merge_topk,
    recall_at_k,
)
from .metrics import LatencyHistogram, ServingMetrics
from .router import CentroidRouter, HedgePolicy, LeastOutstandingDispatcher
from .server import EmbeddingServer, ServerConfig, TraceReplay
from .upsert import SlabUpsertProducer, UpsertSlab, drift_refresh
from .workload import (
    QueryTrace,
    bursty_trace,
    diurnal_trace,
    modulated_trace,
    zipf_trace,
)

__all__ = [
    "BruteForceIndex",
    "ClusterIndex",
    "build_index",
    "l2_normalize_rows",
    "merge_topk",
    "recall_at_k",
    "MicroBatcher",
    "Request",
    "GenerationalCache",
    "LRUCache",
    "LatencyHistogram",
    "ServingMetrics",
    "EmbeddingServer",
    "ServerConfig",
    "TraceReplay",
    "ClusterConfig",
    "ClusterReplay",
    "ClusterServer",
    "ShardedIndex",
    "partition_vertices",
    "CentroidRouter",
    "HedgePolicy",
    "LeastOutstandingDispatcher",
    "SlabUpsertProducer",
    "UpsertSlab",
    "drift_refresh",
    "QueryTrace",
    "zipf_trace",
    "bursty_trace",
    "diurnal_trace",
    "modulated_trace",
]
