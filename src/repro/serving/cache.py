"""LRU result cache for the embedding server.

Serving traffic is heavily skewed — the Amazon profile's power-law degree
distribution translates into a power-law query popularity under any
degree-correlated workload — so a small exact-result cache absorbs a
large fraction of requests. Entries are keyed on ``(query_id, k)`` and
carry the embedding *generation* they were computed against: refreshing
the embedding matrix bumps the generation, which invalidates every stale
entry without an O(capacity) sweep.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

__all__ = ["LRUCache"]


class LRUCache:
    """Bounded LRU map with hit/miss accounting and bulk invalidation."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, tuple[int, object]] = OrderedDict()
        self.generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        entry = self._data.get(key)
        return entry is not None and entry[0] == self.generation

    def get(self, key: Hashable) -> object | None:
        """Return the cached value (refreshing recency) or ``None``.

        Entries written against an older embedding generation count as
        misses and are dropped on touch.
        """
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            return None
        gen, value = entry
        if gen != self.generation:
            del self._data[key]
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry when full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = (self.generation, value)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (embeddings refreshed): O(1) generation bump."""
        self.generation += 1
        self.invalidations += 1
        # Old-generation entries are dead weight; clear eagerly so the
        # capacity is available to fresh results immediately.
        self._data.clear()

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        """Counters snapshot for the metrics report."""
        return {
            "size": float(len(self._data)),
            "capacity": float(self.capacity),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
            "evictions": float(self.evictions),
            "invalidations": float(self.invalidations),
        }
