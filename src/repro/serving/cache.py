"""Generational LRU result cache for the embedding servers.

Serving traffic is heavily skewed — the Amazon profile's power-law degree
distribution translates into a power-law query popularity under any
degree-correlated workload — so a small exact-result cache absorbs a
large fraction of requests. Entries are keyed on ``(query_id, k)`` and
carry the embedding *generation(s)* they were computed against:
refreshing the embedding matrix bumps a generation counter, which
invalidates every stale entry without an O(capacity) sweep.

Two granularities of invalidation:

* **global** — ``invalidate()`` bumps the cache-wide generation (a full
  embedding swap on the single-node server);
* **keyed / per-shard** — ``put(key, value, groups=(shard,))`` stamps an
  entry with the generation of every *group* (shard) that contributed to
  it, and ``invalidate(group=shard)`` bumps only that group's counter.
  A streaming upsert into one shard then kills exactly the cached
  results that touched that shard — the rest of the cache survives.

Stale entries are dropped lazily on touch, so both invalidation paths
stay O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable

__all__ = ["GenerationalCache", "LRUCache"]


class GenerationalCache:
    """Bounded LRU map with global and per-group generation stamps."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        # key -> (global_gen, ((group, group_gen), ...), value)
        self._data: OrderedDict[
            Hashable, tuple[int, tuple[tuple[Hashable, int], ...], object]
        ] = OrderedDict()
        self.generation = 0
        self._group_gens: dict[Hashable, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.group_invalidations = 0

    def __len__(self) -> int:
        return len(self._data)

    def group_generation(self, group: Hashable) -> int:
        """Current generation of ``group`` (0 before any invalidation)."""
        return self._group_gens.get(group, 0)

    def _is_fresh(
        self, entry: tuple[int, tuple[tuple[Hashable, int], ...], object]
    ) -> bool:
        gen, groups, _ = entry
        if gen != self.generation:
            return False
        return all(self.group_generation(g) == g_gen for g, g_gen in groups)

    def __contains__(self, key: Hashable) -> bool:
        entry = self._data.get(key)
        return entry is not None and self._is_fresh(entry)

    def get(self, key: Hashable) -> object | None:
        """Return the cached value (refreshing recency) or ``None``.

        Entries written against an older generation — global or of any
        group they were stamped with — count as misses and are dropped
        on touch.
        """
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            return None
        if not self._is_fresh(entry):
            del self._data[key]
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return entry[2]

    def put(
        self,
        key: Hashable,
        value: object,
        *,
        groups: Iterable[Hashable] = (),
    ) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry when full.

        ``groups`` names the shards (or any other invalidation domains)
        the value was computed from; the entry dies when any of their
        generations moves.
        """
        if key in self._data:
            self._data.move_to_end(key)
        stamp = tuple((g, self.group_generation(g)) for g in groups)
        self._data[key] = (self.generation, stamp, value)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def invalidate(self, group: Hashable | None = None) -> None:
        """Invalidate cached results: O(1) generation bump.

        With no argument, every entry dies (full embedding refresh) and
        the map is cleared eagerly so the capacity is available to fresh
        results immediately. With ``group``, only entries stamped with
        that group die — lazily, on next touch — and everything else
        keeps serving.
        """
        if group is None:
            self.generation += 1
            self.invalidations += 1
            self._data.clear()
        else:
            self._group_gens[group] = self.group_generation(group) + 1
            self.group_invalidations += 1

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        """Counters snapshot for the metrics report."""
        return {
            "size": float(len(self._data)),
            "capacity": float(self.capacity),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
            "evictions": float(self.evictions),
            "invalidations": float(self.invalidations),
            "group_invalidations": float(self.group_invalidations),
        }


#: Historical name: the single-node server predates keyed generations.
LRUCache = GenerationalCache
