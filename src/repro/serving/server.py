"""The embedding query server: index + micro-batcher + cache + metrics.

:class:`EmbeddingServer` replays a request trace through a discrete-event
loop: arrivals come from the trace's (virtual) clock, service times are
either *measured* around the real index kernels (honest wall-clock cost,
the benchmark mode) or supplied by a deterministic ``service_model``
(the unit-test mode). Queueing, micro-batch formation, load shedding and
deadline-based degradation all happen on the virtual clock, so overload
behavior is reproducible while compute cost stays real.

Overload handling, in order of escalation:

1. **micro-batching** — pending queries coalesce into one batched scan
   (up to ``max_batch``), amortizing the kernel launch;
2. **deadline degradation** — when the batch's head request has waited
   past ``deadline``, an ANN index is probed with half the cells per
   deadline overrun (never below ``min_probes``): latency is bought with
   bounded recall loss;
3. **load shedding** — arrivals beyond ``queue_capacity`` pending
   requests are dropped and counted, keeping worst-case latency bounded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..obs import is_enabled as obs_enabled
from ..obs import metrics as obs_metrics
from ..obs import context as obs_context
from ..obs.trace import span
from .batcher import MicroBatcher, Request
from .cache import GenerationalCache
from .index import BruteForceIndex, ClusterIndex, build_index
from .metrics import ServingMetrics
from .workload import QueryTrace

__all__ = ["ServerConfig", "TraceReplay", "EmbeddingServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Knobs for one server instance (see module docstring)."""

    max_batch: int = 32
    max_wait: float = 0.0  # seconds a partial batch waits for company
    queue_capacity: int = 256  # pending requests before shedding
    cache_capacity: int = 0  # 0 disables the result cache
    deadline: float | None = None  # None disables probe degradation
    min_probes: int = 1
    # Kernel dispatch planning mode for the replay's similarity kernels
    # ("fast" | "reference" | "auto"; see repro.kernels.autotune).
    kernel_plan: str = "fast"


@dataclass
class TraceReplay:
    """Outcome of one trace replay: metrics plus (optionally) results."""

    metrics: ServingMetrics
    results: dict[int, np.ndarray] | None = None  # trace seq -> top-k ids
    batch_stats: dict[str, float] = field(default_factory=dict)


class EmbeddingServer:
    """Serve k-NN queries over an embedding matrix under load."""

    def __init__(
        self,
        embeddings: np.ndarray,
        *,
        config: ServerConfig | None = None,
        index: str | BruteForceIndex | ClusterIndex = "brute",
        index_kwargs: dict | None = None,
        service_model: Callable[[int, int], float] | None = None,
    ):
        self.config = config or ServerConfig()
        if isinstance(index, str):
            self.index = build_index(embeddings, index, **(index_kwargs or {}))
        else:
            self.index = index
        self.cache = (
            GenerationalCache(self.config.cache_capacity)
            if self.config.cache_capacity > 0
            else None
        )
        # service_model(batch_size, rows_scanned) -> seconds; None means
        # measure the real kernel time with perf_counter.
        self.service_model = service_model
        self.refreshes = 0

    # ------------------------------------------------------------------
    # Single-request path (no queueing — the convenience API).
    def query(self, query_id: int, k: int = 10) -> np.ndarray:
        """Top-``k`` neighbor ids of one vertex, through the cache."""
        key = (int(query_id), int(k))
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                return hit
        idx, _ = self.index.search_ids(np.array([query_id]), k)
        result = idx[0].copy()
        if self.cache is not None:
            self.cache.put(key, result)
        return result

    def refresh_embeddings(self, embeddings: np.ndarray) -> None:
        """Swap in a new embedding matrix: rebuild the index with the
        same structure and invalidate every cached result."""
        if isinstance(self.index, ClusterIndex):
            self.index = ClusterIndex(
                embeddings,
                num_clusters=self.index.num_clusters,
                probes=self.index.default_probes,
                rng=np.random.default_rng(0),
            )
        else:
            self.index = BruteForceIndex(
                embeddings, chunk_size=self.index.chunk_size
            )
        if self.cache is not None:
            self.cache.invalidate()
        self.refreshes += 1

    # ------------------------------------------------------------------
    # Trace replay.
    def serve_trace(
        self, trace: QueryTrace, *, collect_results: bool = False
    ) -> TraceReplay:
        """Replay ``trace`` through the event loop; return metrics.

        With :mod:`repro.obs` enabled, the replay records one
        ``serve.trace`` span with a ``serve.batch`` child per dispatched
        batch (the index scan itself under ``serve.search``), plus
        admission/cache/shed counters on the shared registry. Every
        request additionally gets its own
        :class:`~repro.obs.context.RequestContext` span tree (queue wait
        then batch service on the virtual clock), and its latency sample
        carries the request id into the tail-exemplar reservoir — so any
        slow request in the exported document is reconstructable by id.
        """
        # Scope the kernel plan mode to this replay's compute (the
        # index's similarity gemms resolve through the plan cache when
        # kernel_plan="auto"); concurrent code keeps its own mode.
        from ..kernels import autotune

        with autotune.planning(self.config.kernel_plan), span("serve.trace") as sp:
            replay = self._serve_trace(trace, collect_results=collect_results)
        if obs_enabled():
            sp.set(requests=len(trace), served=replay.metrics.served)
            obs_metrics.inc("serve.requests", len(trace))
            obs_metrics.inc("serve.served", replay.metrics.served)
            obs_metrics.inc("serve.shed", replay.metrics.shed)
            obs_metrics.inc("serve.cache_hits", replay.metrics.cache_hits)
            obs_metrics.inc("serve.cache_misses", replay.metrics.cache_misses)
        return replay

    def _serve_trace(
        self, trace: QueryTrace, *, collect_results: bool = False
    ) -> TraceReplay:
        cfg = self.config
        metrics = ServingMetrics()
        batcher = MicroBatcher(
            max_batch=cfg.max_batch,
            max_wait=cfg.max_wait,
            capacity=cfg.queue_capacity,
        )
        results: dict[int, np.ndarray] | None = (
            {} if collect_results else None
        )
        # Request-scoped tracing: one deterministic id namespace per
        # replay, one RequestContext per arrival while obs is enabled.
        tracing = obs_enabled()
        id_prefix = f"{obs_context.new_trace_id()}.req" if tracing else ""
        busy_until = 0.0
        i, n = 0, len(trace)
        ids, arrivals = trace.query_ids, trace.arrivals
        while i < n or len(batcher):
            if len(batcher):
                t_start = batcher.ready_time(busy_until)
                # Dispatch if no future arrival precedes the batch start.
                if i >= n or t_start <= arrivals[i]:
                    busy_until = self._run_batch(
                        batcher, t_start, metrics, results
                    )
                    continue
            qid, t = int(ids[i]), float(arrivals[i])
            seq = i
            i += 1
            metrics.observe_arrival(t)
            ctx = (
                obs_context.RequestContext(
                    obs_context.new_request_id(id_prefix), t, qid=qid, k=trace.k
                )
                if tracing
                else None
            )
            if self.cache is not None:
                t0 = time.perf_counter()
                hit = self.cache.get((qid, trace.k))
                lookup = time.perf_counter() - t0
                if hit is not None:
                    metrics.cache_hits += 1
                    cost = (
                        lookup if self.service_model is None else 0.0
                    )
                    metrics.observe_completion(t, t + cost)
                    if ctx is not None:
                        ctx.child("serve.cache_hit", t, t_end=t + cost)
                        ctx.finish(t + cost)
                        obs_metrics.observe(
                            "serve.latency_seconds", cost,
                            request_id=ctx.request_id,
                        )
                    if results is not None:
                        results[seq] = hit
                    continue
                metrics.cache_misses += 1
            if not batcher.offer(Request(qid, trace.k, t, seq, ctx=ctx)):
                metrics.shed += 1
                if ctx is not None:
                    ctx.finish(t, shed=True)
        metrics.last_completion = max(metrics.last_completion, busy_until)
        return TraceReplay(
            metrics=metrics,
            results=results,
            batch_stats=batcher.stats.as_dict(),
        )

    def _effective_probes(
        self, lateness: float, metrics: ServingMetrics
    ) -> int | None:
        """Degraded probe count for a late batch (ANN indexes only)."""
        if not isinstance(self.index, ClusterIndex):
            return None
        base = self.index.default_probes
        if self.config.deadline is None or lateness <= self.config.deadline:
            return base
        halvings = min(int(lateness / self.config.deadline), 16)
        effective = max(self.config.min_probes, base >> halvings)
        if effective < base:
            metrics.degraded_batches += 1
        return effective

    def _run_batch(
        self,
        batcher: MicroBatcher,
        t_start: float,
        metrics: ServingMetrics,
        results: dict[int, np.ndarray] | None,
    ) -> float:
        """Serve one batch at virtual time ``t_start``; return busy-until."""
        batch = batcher.take()
        metrics.batches += 1
        lateness = t_start - batch[0].arrival
        probes = self._effective_probes(lateness, metrics)
        qids = np.fromiter(
            (r.query_id for r in batch), dtype=np.int64, count=len(batch)
        )
        kmax = max(r.k for r in batch)
        with span("serve.batch") as batch_sp:
            with span("serve.search"):
                t0 = time.perf_counter()
                if probes is None:
                    idx, _ = self.index.search_ids(qids, kmax)
                else:
                    idx, _ = self.index.search_ids(qids, kmax, probes=probes)
                measured = time.perf_counter() - t0
            rows = getattr(self.index, "last_rows_scanned", 0)
            if obs_enabled():
                batch_sp.set(size=len(batch), rows=rows, lateness=lateness)
                obs_metrics.inc("serve.batches")
                obs_metrics.inc("serve.rows_scanned", rows)
                obs_metrics.observe("serve.batch_size", len(batch))
        duration = (
            measured
            if self.service_model is None
            else self.service_model(len(batch), rows)
        )
        completion = t_start + duration
        metrics.rows_scanned += rows
        metrics.service_time_total += duration
        # Hoisted out of the per-request loop: one histogram lookup per
        # batch instead of one guarded observe() per request.
        latency_hist = (
            obs_metrics.get_registry().histogram("serve.latency_seconds")
            if obs_enabled()
            else None
        )
        for row, req in zip(idx, batch):
            answer = row[: req.k].copy()
            metrics.observe_completion(req.arrival, completion)
            if req.ctx is not None:
                if t_start > req.arrival:
                    req.ctx.child("serve.queue", req.arrival, t_end=t_start)
                req.ctx.child(
                    "serve.service", t_start, t_end=completion,
                    size=len(batch), rows=rows,
                )
                req.ctx.finish(completion)
                if latency_hist is not None:
                    latency = completion - req.arrival
                    latency_hist.record(latency)
                    latency_hist.record_exemplar(latency, req.ctx.request_id)
            if results is not None:
                results[req.seq] = answer
            if self.cache is not None:
                self.cache.put((req.query_id, req.k), answer)
        return completion
