"""Similarity indexes for embedding serving.

The paper motivates graph embedding with downstream nearest-neighbor
workloads ("content recommendation", Section I). Serving those queries
against a large embedding matrix is a retrieval problem, not a training
problem: a brute-force scan touches all ``n`` rows per query, while a
cluster-pruned index (the classic IVF/cluster-pruning scheme) buckets
vertices by k-means cell and probes only the ``p`` cells whose centroids
are closest to the query — an ``n/c * p`` fraction of the rows for a
controlled recall loss.

Two index types share one search contract:

* :class:`BruteForceIndex` — exact, memory-bounded (query chunking), the
  oracle the approximate index is measured against;
* :class:`ClusterIndex` — spherical k-means cells (or externally supplied
  assignments, e.g. a :mod:`repro.graphs.partition` partition) with a
  tunable ``probes`` knob, the accuracy/latency dial the server's
  deadline-degradation uses.

:func:`recall_at_k` is the standard evaluation: fraction of the exact
top-k recovered by the approximate search.
"""

from __future__ import annotations

import numpy as np

from ..kernels import ops as kernel_ops

__all__ = [
    "l2_normalize_rows",
    "BruteForceIndex",
    "ClusterIndex",
    "recall_at_k",
    "build_index",
    "merge_topk",
]


def l2_normalize_rows(matrix: np.ndarray, dtype=np.float64) -> np.ndarray:
    """L2-normalize rows (zero rows stay zero).

    ``dtype`` selects the serving precision: float64 is the default
    (exact, matches training output), float32 halves index memory and
    similarity-scan traffic for a last-ulp recall cost.
    """
    matrix = np.asarray(matrix, dtype=dtype)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return np.divide(
        matrix, norms, out=np.zeros_like(matrix), where=norms > 0
    )


def _query_chunks(num_queries: int, chunk_size: int | None) -> list[range]:
    """Split ``range(num_queries)`` into contiguous chunks.

    A trailing chunk of a single row is merged into its predecessor: BLAS
    dispatches 1-row products to a GEMV kernel whose accumulation order
    can differ from the GEMM path, and chunking must not change results.
    """
    if chunk_size is None or chunk_size >= num_queries:
        return [range(num_queries)] if num_queries else []
    chunk_size = max(int(chunk_size), 1)
    bounds = list(range(0, num_queries, chunk_size)) + [num_queries]
    if len(bounds) > 2 and bounds[-1] - bounds[-2] == 1 and chunk_size > 1:
        del bounds[-2]
    return [range(a, b) for a, b in zip(bounds[:-1], bounds[1:])]


def _topk_rows(sims: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise top-k (descending) of a similarity block.

    Same argpartition-then-argsort scheme the original
    ``cosine_nearest_neighbors`` used, so tie ordering is preserved.
    """
    k = min(k, sims.shape[1])
    idx = np.argpartition(-sims, kth=k - 1, axis=1)[:, :k]
    row = np.arange(sims.shape[0])[:, None]
    order = np.argsort(-sims[row, idx], axis=1)
    idx = idx[row, order]
    return idx, sims[row, idx]


def merge_topk(
    candidate_ids,
    candidate_sims,
    k: int,
    *,
    exclude: int | None = None,
    dtype=np.float64,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-shard candidate lists into one query's global top-``k``.

    ``candidate_ids`` / ``candidate_sims`` are parallel sequences of 1-D
    arrays (global vertex ids and their similarities, one pair per
    shard). Padding entries (``id < 0``) and the optional ``exclude``
    vertex are dropped. Because per-shard similarities are computed as
    independent per-pair reductions (see :class:`BruteForceIndex`), the
    merged ranking over a full fan-out is bit-identical to the unsharded
    scan. Output is padded with ``-1`` / ``-inf`` when fewer than ``k``
    candidates survive.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    idx_out = np.full(k, -1, dtype=np.int64)
    sim_out = np.full(k, -np.inf, dtype=dtype)
    if candidate_ids:
        ids = np.concatenate([np.asarray(a).ravel() for a in candidate_ids])
        sims = np.concatenate([np.asarray(a).ravel() for a in candidate_sims])
    else:
        ids = np.empty(0, dtype=np.int64)
        sims = np.empty(0, dtype=dtype)
    keep = ids >= 0
    if exclude is not None:
        keep &= ids != exclude
    ids, sims = ids[keep], sims[keep]
    if ids.size:
        kk = min(k, ids.size)
        top = np.argpartition(-sims, kth=kk - 1)[:kk]
        top = top[np.argsort(-sims[top])]
        idx_out[:kk] = ids[top]
        sim_out[:kk] = sims[top]
    return idx_out, sim_out


def recall_at_k(approx_idx: np.ndarray, exact_idx: np.ndarray) -> float:
    """Mean fraction of the exact top-k present in the approximate top-k.

    Rows are queries; ``-1`` entries (padding for queries with fewer than
    ``k`` candidates) are ignored on both sides.
    """
    approx_idx = np.asarray(approx_idx)
    exact_idx = np.asarray(exact_idx)
    if approx_idx.shape[0] != exact_idx.shape[0]:
        raise ValueError("query counts differ")
    if exact_idx.size == 0:
        return 1.0
    scores = []
    for a, e in zip(approx_idx, exact_idx):
        truth = set(int(x) for x in e if x >= 0)
        if not truth:
            continue
        got = set(int(x) for x in a if x >= 0)
        scores.append(len(got & truth) / len(truth))
    return float(np.mean(scores)) if scores else 1.0


class BruteForceIndex:
    """Exact cosine top-k over the full embedding matrix.

    Queries are processed in chunks of ``chunk_size`` rows so the
    intermediate ``(chunk, n)`` similarity block — not ``(B, n)`` — is
    the peak memory cost.
    """

    def __init__(
        self,
        embeddings: np.ndarray,
        *,
        chunk_size: int = 1024,
        dtype=np.float64,
    ):
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.dtype = np.dtype(dtype)
        self._normed = l2_normalize_rows(embeddings, dtype=self.dtype)
        self.chunk_size = chunk_size

    @property
    def num_vectors(self) -> int:
        """Number of indexed rows."""
        return self._normed.shape[0]

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        return self._normed.shape[1]

    # Cost accounting hook: rows scanned by the last search (the server's
    # service model and the bench report both read it).
    last_rows_scanned: int = 0

    def search(
        self,
        query_vecs: np.ndarray,
        k: int,
        *,
        exclude: np.ndarray | None = None,
        probes: int | None = None,
        normalized: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` cosine neighbors of each query vector.

        ``exclude[i]`` (optional) is a vertex id masked out of query
        ``i``'s candidates — self-exclusion for query-by-vertex.
        ``probes`` is accepted (and ignored) so both index types can be
        driven through one call signature. ``normalized`` skips query
        normalization when the caller guarantees unit rows (the
        query-by-id path — renormalizing would perturb the last ulp).
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        query_vecs = np.atleast_2d(np.asarray(query_vecs, dtype=self.dtype))
        qn = query_vecs if normalized else l2_normalize_rows(query_vecs, dtype=self.dtype)
        num_q = qn.shape[0]
        k = min(k, self.num_vectors - (1 if exclude is not None else 0))
        k = max(k, 1)
        idx_out = np.empty((num_q, k), dtype=np.int64)
        sim_out = np.empty((num_q, k), dtype=self.dtype)
        for chunk in _query_chunks(num_q, self.chunk_size):
            rows = slice(chunk.start, chunk.stop)
            # transient: sims is fully consumed (top-k + einsum) before
            # the next chunk's gemm, so an autotuned plan may reuse the
            # arena buffer across chunks.
            sims = kernel_ops.gemm(qn[rows], self._normed.T, transient=True)
            if exclude is not None:
                sims[
                    np.arange(chunk.stop - chunk.start),
                    np.asarray(exclude)[rows],
                ] = -np.inf
            idx_out[rows], _ = _topk_rows(sims, k)
            # Recompute the returned similarities as independent per-pair
            # dots: unlike the GEMM block (whose accumulation order — and
            # last ulp — depends on the chunk's row count), each pair's
            # reduction is fixed, so results are bit-identical under any
            # chunking.
            sim_out[rows] = np.einsum(
                "qd,qkd->qk", qn[rows], self._normed[idx_out[rows]]
            )
        self.last_rows_scanned = num_q * self.num_vectors
        return idx_out, sim_out

    def search_ids(
        self, query_ids: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` neighbors of indexed vertices, excluding themselves."""
        query_ids = np.asarray(query_ids, dtype=np.int64).ravel()
        return self.search(
            self._normed[query_ids], k, exclude=query_ids, normalized=True
        )


def _spherical_kmeans(
    normed: np.ndarray,
    num_clusters: int,
    rng: np.random.Generator,
    iters: int = 12,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's iterations with cosine assignment on unit vectors.

    Returns ``(centroids, assignments)``; empty clusters are reseeded to
    the point currently worst-served by its centroid.
    """
    n = normed.shape[0]
    start = rng.choice(n, size=num_clusters, replace=False)
    centroids = normed[start].copy()
    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(iters):
        # transient: consumed into assignments/best before the next
        # iteration's same-shape gemm.
        sims = kernel_ops.gemm(normed, centroids.T, transient=True)
        assignments = sims.argmax(axis=1)
        best = sims[np.arange(n), assignments]
        for c in range(num_clusters):
            members = assignments == c
            if not members.any():
                worst = int(np.argmin(best))
                centroids[c] = normed[worst]
                assignments[worst] = c
                best[worst] = 1.0
                continue
            mean = normed[members].mean(axis=0)
            norm = np.linalg.norm(mean)
            centroids[c] = mean / norm if norm > 0 else normed[members][0]
    return centroids, assignments


class ClusterIndex:
    """Cluster-pruned approximate index (IVF over k-means cells).

    Search ranks the ``num_clusters`` centroids against the query and
    scans only the members of the top-``probes`` cells. ``probes`` is the
    recall/latency dial: ``probes == num_clusters`` degenerates to an
    exact scan (plus the centroid pass).
    """

    def __init__(
        self,
        embeddings: np.ndarray,
        *,
        num_clusters: int | None = None,
        probes: int = 4,
        assignments: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        kmeans_iters: int = 12,
        dtype=np.float64,
    ):
        self.dtype = np.dtype(dtype)
        self._normed = l2_normalize_rows(embeddings, dtype=self.dtype)
        n = self._normed.shape[0]
        if n == 0:
            raise ValueError("cannot index an empty embedding matrix")
        if assignments is not None:
            assignments = np.asarray(assignments, dtype=np.int64).ravel()
            if assignments.shape[0] != n:
                raise ValueError("assignments length != number of rows")
            num_clusters = int(assignments.max()) + 1
            centroids = np.zeros((num_clusters, self._normed.shape[1]), dtype=self.dtype)
            for c in range(num_clusters):
                members = assignments == c
                if members.any():
                    centroids[c] = self._normed[members].mean(axis=0)
            centroids = l2_normalize_rows(centroids, dtype=self.dtype)
        else:
            if num_clusters is None:
                num_clusters = max(1, min(n, int(round(np.sqrt(n)))))
            if not 1 <= num_clusters <= n:
                raise ValueError("num_clusters must be in [1, n]")
            rng = rng or np.random.default_rng(0)
            centroids, assignments = _spherical_kmeans(
                self._normed, num_clusters, rng, iters=kmeans_iters
            )
        self.centroids = centroids
        self.assignments = assignments
        self.num_clusters = num_clusters
        self.default_probes = int(np.clip(probes, 1, num_clusters))
        self._members = [
            np.flatnonzero(assignments == c) for c in range(num_clusters)
        ]
        self.last_rows_scanned = 0

    @property
    def num_vectors(self) -> int:
        """Number of indexed rows."""
        return self._normed.shape[0]

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        return self._normed.shape[1]

    def search(
        self,
        query_vecs: np.ndarray,
        k: int,
        *,
        probes: int | None = None,
        exclude: np.ndarray | None = None,
        normalized: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Probed top-``k``: scan members of the ``probes`` nearest cells.

        One matmul per *probed cell* over all queries probing it, so a
        micro-batch of queries amortizes the cell scans the same way
        Algorithm 1 amortizes aggregation over a sampled subgraph.
        Queries with fewer than ``k`` candidates pad ``indices`` with
        ``-1`` and ``similarities`` with ``-inf``.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        query_vecs = np.atleast_2d(np.asarray(query_vecs, dtype=self.dtype))
        qn = query_vecs if normalized else l2_normalize_rows(query_vecs, dtype=self.dtype)
        num_q = qn.shape[0]
        p = int(np.clip(probes or self.default_probes, 1, self.num_clusters))
        # transient: consumed into probe_sets right here. The per-cell
        # `block` gemm below must NOT be transient — its rows are kept
        # as views in cand_sims across later gemm calls.
        cent_sims = kernel_ops.gemm(qn, self.centroids.T, transient=True)
        if p < self.num_clusters:
            probe_sets = np.argpartition(-cent_sims, kth=p - 1, axis=1)[:, :p]
        else:
            probe_sets = np.tile(np.arange(self.num_clusters), (num_q, 1))
        # Invert: for each cell, which queries probe it → one gemm/cell.
        cand_ids: list[list[np.ndarray]] = [[] for _ in range(num_q)]
        cand_sims: list[list[np.ndarray]] = [[] for _ in range(num_q)]
        scanned = 0
        for c in range(self.num_clusters):
            querying = np.flatnonzero((probe_sets == c).any(axis=1))
            members = self._members[c]
            if querying.size == 0 or members.size == 0:
                continue
            block = kernel_ops.gemm(qn[querying], self._normed[members].T)
            scanned += querying.size * members.size
            for row, q in enumerate(querying):
                cand_ids[q].append(members)
                cand_sims[q].append(block[row])
        self.last_rows_scanned = scanned
        idx_out = np.full((num_q, k), -1, dtype=np.int64)
        sim_out = np.full((num_q, k), -np.inf, dtype=self.dtype)
        exclude = None if exclude is None else np.asarray(exclude).ravel()
        for q in range(num_q):
            if not cand_ids[q]:
                continue
            ids = np.concatenate(cand_ids[q])
            sims = np.concatenate(cand_sims[q])
            if exclude is not None:
                keep = ids != exclude[q]
                ids, sims = ids[keep], sims[keep]
            if ids.size == 0:
                continue
            kk = min(k, ids.size)
            top = np.argpartition(-sims, kth=kk - 1)[:kk]
            top = top[np.argsort(-sims[top])]
            idx_out[q, :kk] = ids[top]
            sim_out[q, :kk] = sims[top]
        return idx_out, sim_out

    def search_ids(
        self, query_ids: np.ndarray, k: int, *, probes: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` neighbors of indexed vertices, excluding themselves."""
        query_ids = np.asarray(query_ids, dtype=np.int64).ravel()
        return self.search(
            self._normed[query_ids],
            k,
            probes=probes,
            exclude=query_ids,
            normalized=True,
        )


def build_index(
    embeddings: np.ndarray,
    kind: str = "brute",
    **kwargs,
) -> BruteForceIndex | ClusterIndex:
    """Factory: ``"brute"`` → :class:`BruteForceIndex`, ``"cluster"`` →
    :class:`ClusterIndex`. Keyword arguments pass through to the chosen
    constructor."""
    if kind == "brute":
        return BruteForceIndex(embeddings, **kwargs)
    if kind == "cluster":
        return ClusterIndex(embeddings, **kwargs)
    raise ValueError(f"unknown index kind {kind!r}")
