"""Streaming embedding upserts: refreshed slabs pushed into live shards.

GraphVite's producer/consumer split — trainers keep producing embedding
updates while serving consumes them — is modeled here as a *slab
producer*: on a fixed staggered schedule (round-robin over shards, one
slab every ``interval`` virtual seconds), the producer emits an
:class:`UpsertSlab` carrying refreshed raw embeddings for one shard's
members. The :class:`~repro.serving.cluster.ClusterServer` applies every
slab whose ``produced_at`` precedes the next event on its simulated
clock, so upserts land *between* batches exactly as a lock-free
generation swap would: in-flight batches serve the old slab, later ones
the new, and the per-shard generation bump in
:class:`~repro.serving.cache.GenerationalCache` kills exactly the cached
results that touched the refreshed shard.

Slab content is deterministic — submission ``i`` always derives its
noise from the ``i``-th child of one :class:`numpy.random.SeedSequence`,
the same scheme as :class:`repro.sampling.pipeline.SubgraphPrefetcher` —
so the optional compute-ahead thread (``prefetch=True``, again the
prefetcher pattern: a bounded queue of futures computed ahead of the
consumer) changes wall-clock overlap but never results. The default
``refresh_fn`` is a drift random walk standing in for continued
training; pass your own (e.g. one that re-runs
``compute_embeddings`` on a trainer checkpoint) to stream real model
output.
"""

from __future__ import annotations

import collections
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["UpsertSlab", "SlabUpsertProducer", "drift_refresh"]


@dataclass(frozen=True)
class UpsertSlab:
    """One shard's refreshed embeddings, stamped with production time."""

    shard: int
    vertex_ids: np.ndarray  # global ids of the shard's members
    vectors: np.ndarray  # (len(vertex_ids), d) raw embeddings
    produced_at: float  # virtual seconds on the replay clock
    round: int  # refresh round (0-based)


def drift_refresh(scale: float = 0.01) -> Callable:
    """Default refresh: a Gaussian drift walk on the current rows.

    Stands in for continued training: each round nudges the shard's
    embeddings without tearing up the geometry, so recall stays high
    while every refresh still changes the served bits.
    """

    def _refresh(
        shard: int, rnd: int, current_rows: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return current_rows + scale * rng.standard_normal(current_rows.shape)

    return _refresh


class SlabUpsertProducer:
    """Deterministic staggered schedule of per-shard embedding refreshes.

    Slab ``j`` refreshes shard ``j % num_shards`` at virtual time
    ``start + j * interval`` (round ``j // num_shards``), for
    ``rounds * num_shards`` slabs total — every shard is refreshed once
    per round, staggered so the cluster never swaps two shards at the
    same instant.

    Parameters
    ----------
    embeddings:
        The raw (unnormalized) matrix being served; copied, then evolved
        by ``refresh_fn`` round over round.
    assignment:
        Vertex -> shard ownership (the cluster's partition).
    start, interval:
        Schedule origin and spacing in virtual seconds.
    rounds:
        Refresh rounds (each covers every shard once).
    refresh_fn:
        ``(shard, round, current_rows, rng) -> new_rows``; defaults to
        :func:`drift_refresh`.
    prefetch, depth:
        Compute slabs ahead on one background thread with a bounded
        in-flight queue (the :class:`SubgraphPrefetcher` pattern).
        Results are identical either way.
    """

    def __init__(
        self,
        embeddings: np.ndarray,
        assignment: np.ndarray,
        *,
        start: float = 0.0,
        interval: float = 1.0,
        rounds: int = 1,
        seed: int = 0,
        refresh_fn: Callable | None = None,
        prefetch: bool = False,
        depth: int = 2,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        assignment = np.asarray(assignment, dtype=np.int64).ravel()
        if assignment.shape[0] != embeddings.shape[0]:
            raise ValueError("assignment length != number of embedding rows")
        self.num_shards = int(assignment.max()) + 1
        self._members = [
            np.flatnonzero(assignment == s) for s in range(self.num_shards)
        ]
        self._current = np.array(embeddings, dtype=np.float64, copy=True)
        self.start = float(start)
        self.interval = float(interval)
        self.total = rounds * self.num_shards
        self.refresh_fn = refresh_fn or drift_refresh()
        self._seeds = np.random.SeedSequence(seed).spawn(self.total)
        self._next = 0  # next slab index to compute
        self._emitted = 0  # next slab index to hand out
        self._ready: collections.deque[Future | UpsertSlab] = collections.deque()
        self._executor = (
            ThreadPoolExecutor(max_workers=1, thread_name_prefix="slab-upsert")
            if prefetch
            else None
        )
        self._depth = depth
        self._closed = False
        self._fill()

    # -- producers -----------------------------------------------------
    def _compute(self, j: int) -> UpsertSlab:
        shard = j % self.num_shards
        members = self._members[shard]
        rng = np.random.default_rng(self._seeds[j])
        rows = self.refresh_fn(
            shard, j // self.num_shards, self._current[members], rng
        )
        rows = np.asarray(rows, dtype=self._current.dtype)
        self._current[members] = rows
        return UpsertSlab(
            shard=shard,
            vertex_ids=members,
            vectors=rows.copy(),
            produced_at=self.start + j * self.interval,
            round=j // self.num_shards,
        )

    def _fill(self) -> None:
        depth = self._depth if self._executor is not None else 1
        while self._next < self.total and len(self._ready) < depth:
            j = self._next
            self._next += 1
            if self._executor is not None:
                self._ready.append(self._executor.submit(self._compute, j))
            else:
                self._ready.append(self._compute(j))

    # -- consumer ------------------------------------------------------
    @property
    def remaining(self) -> int:
        """Slabs not yet handed out."""
        return self.total - self._emitted

    def peek_time(self) -> float | None:
        """Virtual production time of the next slab (None when drained)."""
        if self._emitted >= self.total:
            return None
        return self.start + self._emitted * self.interval

    def pending(self, now: float) -> list[UpsertSlab]:
        """Pop every slab produced at or before virtual time ``now``.

        Blocks on the compute-ahead future if the slab is due but not
        finished (content is deterministic, so this only costs time).
        """
        due: list[UpsertSlab] = []
        while True:
            t = self.peek_time()
            if t is None or t > now:
                break
            item = self._ready.popleft()
            slab = item.result() if isinstance(item, Future) else item
            due.append(slab)
            self._emitted += 1
            self._fill()
        return due

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Shut the compute-ahead thread down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "SlabUpsertProducer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
