"""Micro-batching request queue.

A single k-NN query is one GEMV; a micro-batch of ``B`` pending queries
is one GEMM — the same amortization Algorithm 1 gets by building a
complete GCN over a sampled subgraph instead of per-vertex neighborhoods.
The batcher owns the admission queue (bounded — the overload backstop)
and the batch-formation policy (dispatch when full, or when the head
request has waited ``max_wait``).

Time is whatever clock the caller advances — the server replays traces
on a virtual clock with measured service times, tests drive it with
explicit timestamps.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["Request", "MicroBatcher"]


@dataclass(frozen=True)
class Request:
    """One k-NN query: vertex id, neighbor count, arrival time, sequence.

    ``ctx`` optionally carries a :class:`repro.obs.context.RequestContext`
    attached at admission, so every later hop (batch, shard, hedge) can
    hang spans off the same per-request tree. ``compare=False`` keeps
    request equality/ordering purely about the query itself.
    """

    query_id: int
    k: int
    arrival: float
    seq: int = 0
    ctx: object | None = field(default=None, compare=False)


@dataclass
class _BatchStats:
    batches: int = 0
    requests: int = 0
    singletons: int = 0
    max_batch_seen: int = 0
    shed: int = 0
    admitted: int = 0

    def as_dict(self) -> dict[str, float]:
        mean = self.requests / self.batches if self.batches else 0.0
        return {
            "batches": float(self.batches),
            "mean_batch_size": mean,
            "singleton_batches": float(self.singletons),
            "max_batch_seen": float(self.max_batch_seen),
            "admitted": float(self.admitted),
            "shed": float(self.shed),
        }


@dataclass
class MicroBatcher:
    """Bounded FIFO queue that coalesces requests into batches.

    ``max_batch`` — dispatch size cap; ``max_wait`` — how long the head
    request may wait for company before a partial batch dispatches;
    ``capacity`` — admission bound (requests offered beyond it are shed).
    """

    max_batch: int = 32
    max_wait: float = 0.0
    capacity: int = 256
    _queue: deque = field(default_factory=deque, repr=False)
    stats: _BatchStats = field(default_factory=_BatchStats, repr=False)

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")

    def __len__(self) -> int:
        return len(self._queue)

    def offer(self, request: Request) -> bool:
        """Admit ``request``, or shed it (return ``False``) when full."""
        if len(self._queue) >= self.capacity:
            self.stats.shed += 1
            return False
        self._queue.append(request)
        self.stats.admitted += 1
        return True

    def ready_time(self, busy_until: float) -> float:
        """Earliest time the next batch could start.

        A full batch starts as soon as the server frees; a partial batch
        additionally waits for the head request's ``max_wait`` window.
        Raises if the queue is empty.
        """
        if not self._queue:
            raise ValueError("no pending requests")
        head = self._queue[0]
        if len(self._queue) >= self.max_batch:
            return max(busy_until, head.arrival)
        return max(busy_until, head.arrival + self.max_wait)

    def take(self) -> list[Request]:
        """Pop the next batch (up to ``max_batch`` head requests)."""
        batch = []
        while self._queue and len(batch) < self.max_batch:
            batch.append(self._queue.popleft())
        if batch:
            self.stats.batches += 1
            self.stats.requests += len(batch)
            self.stats.singletons += len(batch) == 1
            self.stats.max_batch_seen = max(
                self.stats.max_batch_seen, len(batch)
            )
        return batch

    @property
    def head_arrival(self) -> float | None:
        """Arrival time of the oldest pending request (None when idle)."""
        return self._queue[0].arrival if self._queue else None
