"""Query routing for the sharded serving cluster.

Three small policies, each independently testable:

* :class:`CentroidRouter` — GOSH-style coarse routing: each shard is
  summarized by the (normalized) mean of its member embeddings, and a
  query fans out only to the ``fanout`` shards whose centroids score
  highest under cosine similarity. The vertex partition itself comes
  from :mod:`repro.graphs.partition` (graph-aware) or spherical k-means
  (embedding-aware); the router only consumes the assignment.
* :class:`LeastOutstandingDispatcher` — replica selection by fewest
  outstanding requests, deterministic tie-break on replica index.
* :class:`HedgePolicy` — hedged requests: after a request has waited
  past an adaptive latency-percentile threshold, a duplicate is issued
  to another replica and the first completion wins.
"""

from __future__ import annotations

import numpy as np

from ..kernels import ops as kernel_ops
from ..obs.metrics import LatencyHistogram

__all__ = ["CentroidRouter", "LeastOutstandingDispatcher", "HedgePolicy"]


class CentroidRouter:
    """Top-``fanout`` shard selection by centroid cosine similarity."""

    def __init__(self, normed: np.ndarray, assignment: np.ndarray):
        assignment = np.asarray(assignment, dtype=np.int64).ravel()
        if assignment.shape[0] != normed.shape[0]:
            raise ValueError("assignment length != number of embedding rows")
        if assignment.size and assignment.min() < 0:
            raise ValueError("assignment must be non-negative")
        self.assignment = assignment
        self.num_shards = int(assignment.max()) + 1 if assignment.size else 0
        if self.num_shards < 1:
            raise ValueError("need at least one shard")
        self.dtype = normed.dtype
        self._members = [
            np.flatnonzero(assignment == s) for s in range(self.num_shards)
        ]
        self._centroids = np.zeros(
            (self.num_shards, normed.shape[1]), dtype=self.dtype
        )
        for s in range(self.num_shards):
            self.refresh_centroid(s, normed[self._members[s]])

    def members(self, shard: int) -> np.ndarray:
        """Global vertex ids owned by ``shard`` (sorted)."""
        return self._members[shard]

    def owner(self, vertex: int) -> int:
        """The shard that owns ``vertex``."""
        return int(self.assignment[vertex])

    @property
    def nonempty_shards(self) -> int:
        """Shards that actually own vertices (routable)."""
        return sum(1 for m in self._members if m.size)

    def refresh_centroid(self, shard: int, normed_rows: np.ndarray) -> None:
        """Recompute one shard's centroid after an embedding upsert."""
        if normed_rows.shape[0] == 0:
            self._centroids[shard] = 0.0
            return
        mean = normed_rows.mean(axis=0)
        norm = np.linalg.norm(mean)
        self._centroids[shard] = mean / norm if norm > 0 else normed_rows[0]

    def route(
        self,
        query_vecs: np.ndarray,
        fanout: int,
        *,
        owners: np.ndarray | None = None,
    ) -> np.ndarray:
        """Top-``fanout`` shard ids per query, best centroid first.

        Empty shards are never routed to (``fanout`` is clamped to the
        non-empty count). ``owners[i]`` (optional) is a shard forced into
        query ``i``'s fan-out set — the query vertex's own shard, so its
        immediate neighborhood is always scanned even when the centroid
        ranking would miss it.
        """
        qn = np.atleast_2d(np.asarray(query_vecs, dtype=self.dtype))
        fanout = int(np.clip(fanout, 1, max(self.nonempty_shards, 1)))
        # transient: fully consumed into `top` below before any later
        # same-shaped routing gemm.
        sims = kernel_ops.gemm(qn, self._centroids.T, transient=True)
        for s, m in enumerate(self._members):
            if m.size == 0:
                sims[:, s] = -np.inf
        if fanout < self.num_shards:
            top = np.argpartition(-sims, kth=fanout - 1, axis=1)[:, :fanout]
        else:
            top = np.tile(np.arange(self.num_shards), (qn.shape[0], 1))
        row = np.arange(qn.shape[0])[:, None]
        order = np.argsort(-sims[row, top], axis=1)
        top = top[row, order]
        if owners is not None:
            owners = np.asarray(owners, dtype=np.int64).ravel()
            missing = ~(top == owners[:, None]).any(axis=1)
            top[missing, -1] = owners[missing]
        return top.astype(np.int64)


class LeastOutstandingDispatcher:
    """Pick the replica with the fewest outstanding requests.

    Stateless: callers pass the current outstanding count per replica
    (queued plus in-service). Ties break to the lowest replica index so
    replays are deterministic.
    """

    @staticmethod
    def pick(outstanding) -> int:
        if not len(outstanding):
            raise ValueError("no replicas to pick from")
        return min(range(len(outstanding)), key=lambda j: (outstanding[j], j))


class HedgePolicy:
    """Adaptive hedge-trigger threshold from observed latencies.

    Until ``min_samples`` latencies have been observed the threshold is
    the fixed ``fallback``; after that it is the ``percentile``-th
    percentile of everything seen so far (the classic "hedge after the
    p95" tail-cutting rule). Observations come from completed sub-request
    latencies, so the threshold adapts to the cluster's real service
    distribution during a replay.
    """

    def __init__(
        self,
        *,
        percentile: float = 95.0,
        min_samples: int = 32,
        fallback: float = 0.05,
    ):
        if not 0.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if fallback <= 0:
            raise ValueError("fallback must be positive")
        self.percentile = percentile
        self.min_samples = min_samples
        self.fallback = fallback
        self._hist = LatencyHistogram()

    def __len__(self) -> int:
        return len(self._hist)

    def observe(self, latency: float) -> None:
        """Record one completed sub-request latency."""
        self._hist.record(max(latency, 0.0))

    def threshold(self) -> float:
        """Current wait before a duplicate request is issued."""
        if len(self._hist) < self.min_samples:
            return self.fallback
        return float(self._hist.percentile(self.percentile))

    def describe(self) -> dict[str, float]:
        """Snapshot of the policy's state (attached to hedge spans and
        flight-recorder events so a dump explains *why* a duplicate was
        issued at that moment)."""
        return {
            "threshold": self.threshold(),
            "samples": float(len(self._hist)),
            "percentile": self.percentile,
            "adaptive": float(len(self._hist) >= self.min_samples),
        }
