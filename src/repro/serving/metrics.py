"""Serving metrics: latency percentiles, throughput, hit-rate, recall.

The paper reports its systems results as tables of measured quantities;
the serving layer does the same. :class:`LatencyHistogram` keeps raw
samples and computes exact percentiles (linear interpolation, matching
``np.percentile``'s default), so the p50/p95/p99 columns are testable
against the numpy oracle rather than approximations from fixed buckets.

The histogram implementation lives in :mod:`repro.obs.metrics` (the
cross-cutting observability layer grew out of it); it is re-exported
here so the serving API is unchanged. Per-request latencies are also
mirrored into the obs registry (``serve.latency_seconds`` for the
single server, ``cluster.latency_seconds`` and
``cluster.shard.<s>.latency_seconds`` for the cluster) so SLO rules and
bench records read the same samples this report summarizes — there is
exactly one histogram implementation in the repo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.metrics import LatencyHistogram

__all__ = ["LatencyHistogram", "ServingMetrics"]


@dataclass
class ServingMetrics:
    """Aggregate counters for one serving run.

    Latency is completion minus arrival on the replay clock; throughput
    is served requests over the span from first arrival to last
    completion. ``shed`` counts load-shedding drops at the admission
    queue, ``degraded_batches`` counts batches served with reduced ANN
    probes because the head request blew its deadline.
    """

    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    served: int = 0
    shed: int = 0
    batches: int = 0
    degraded_batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    rows_scanned: int = 0
    service_time_total: float = 0.0
    first_arrival: float | None = None
    last_completion: float = 0.0
    recall_at_k: float | None = None

    def observe_arrival(self, t: float) -> None:
        """Track the earliest arrival (throughput span start)."""
        if self.first_arrival is None or t < self.first_arrival:
            self.first_arrival = t

    def observe_completion(self, arrival: float, completion: float) -> None:
        """Record one served request's latency and completion time."""
        self.latency.record(max(completion - arrival, 0.0))
        self.served += 1
        self.last_completion = max(self.last_completion, completion)

    @property
    def offered(self) -> int:
        """Requests that reached the server (served + shed)."""
        return self.served + self.shed

    @property
    def span(self) -> float:
        """First arrival to last completion, on the replay clock."""
        if self.first_arrival is None:
            return 0.0
        return max(self.last_completion - self.first_arrival, 0.0)

    @property
    def throughput(self) -> float:
        """Served requests per second of span (0.0 for an empty run)."""
        return self.served / self.span if self.span > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        """Cache hits / lookups (0.0 without a cache)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def shed_rate(self) -> float:
        """Shed / offered (0.0 for an empty run)."""
        return self.shed / self.offered if self.offered else 0.0

    def deadline_miss_rate(self, deadline: float) -> float:
        """Fraction of served requests whose latency exceeded
        ``deadline`` seconds (0.0 for an empty run) — what the serving
        SLO rule in :mod:`repro.obs.slo` gates on."""
        samples = self.latency.samples
        if not samples:
            return 0.0
        return sum(1 for s in samples if s > deadline) / len(samples)

    def as_dict(self) -> dict[str, float]:
        """Flat summary row (latencies in milliseconds)."""
        lat = self.latency.summary(scale=1e3)
        out = {
            "served": float(self.served),
            "shed": float(self.shed),
            "throughput_qps": self.throughput,
            "p50_ms": lat["p50"],
            "p95_ms": lat["p95"],
            "p99_ms": lat["p99"],
            "mean_ms": lat["mean"],
            "hit_rate": self.hit_rate,
            "batches": float(self.batches),
            "degraded_batches": float(self.degraded_batches),
            "rows_scanned": float(self.rows_scanned),
        }
        if self.recall_at_k is not None:
            out["recall_at_k"] = self.recall_at_k
        return out
