"""Sharded, replicated embedding serving with streaming upserts.

The single-node :class:`~repro.serving.server.EmbeddingServer` scans one
index; production traffic at the ROADMAP's scale wants the GraphVite /
GOSH shape instead: vertices are *partitioned* into shards (cache-aware
graph partition from :mod:`repro.graphs.partition`, or spherical
k-means in embedding space), each shard holds an index over its members
behind a small replica set, and a query fans out only to the
``fanout`` shards whose centroids rank highest
(:class:`~repro.serving.router.CentroidRouter`).

:class:`ClusterServer` composes per-replica micro-batchers on the same
discrete-event virtual clock the single server replays on, so the whole
cluster stays deterministic and unit-testable:

* **admission** — each arrival is routed, then one sub-request per
  fan-out shard is enqueued on that shard's least-outstanding replica
  (:class:`~repro.serving.router.LeastOutstandingDispatcher`); if any
  replica queue is full the whole query is shed.
* **service** — replica batches run exactly like the single server's:
  measured around the real kernels, or priced by a deterministic
  ``service_model(shard, replica, batch_size, rows)``.
* **hedging** — a sub-request still unresolved after the
  :class:`~repro.serving.router.HedgePolicy` threshold is duplicated on
  a sibling replica; the first completion wins (duplicates still pay
  their service cost — hedging buys tail latency with extra work).
* **upserts** — before every event, slabs from a
  :class:`~repro.serving.upsert.SlabUpsertProducer` whose production
  time has passed are swapped in: shard index rebuilt, centroid
  refreshed, and the shard's cache *group* generation bumped so only
  results that touched that shard are invalidated.
* **merge** — per-shard candidates merge via
  :func:`~repro.serving.index.merge_topk`; a full fan-out reproduces
  the unsharded :class:`~repro.serving.index.BruteForceIndex` top-k
  bit-identically (property-tested).

Obs: ``cluster.*`` counters/histograms (fan-out width, hedge rate,
replica queue depth, upsert lag, staleness, per-shard latency) feed the
``per_shard_p99`` and ``staleness_bound`` SLO rules in
:mod:`repro.obs.slo`.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..obs import is_enabled as obs_enabled
from ..obs import metrics as obs_metrics
from ..obs import context as obs_context
from ..obs.flight import flight_event
from ..obs.trace import span
from .batcher import MicroBatcher, Request
from .cache import GenerationalCache
from .index import (
    BruteForceIndex,
    ClusterIndex,
    l2_normalize_rows,
    merge_topk,
    _spherical_kmeans,
)
from .metrics import ServingMetrics
from .router import CentroidRouter, HedgePolicy, LeastOutstandingDispatcher
from .upsert import SlabUpsertProducer
from .workload import QueryTrace

__all__ = [
    "ClusterConfig",
    "ClusterReplay",
    "ClusterServer",
    "ShardedIndex",
    "partition_vertices",
]


def partition_vertices(
    embeddings: np.ndarray | None = None,
    *,
    num_shards: int,
    method: str = "kmeans",
    graph=None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Vertex -> shard assignment for the cluster.

    ``"kmeans"`` partitions in embedding space (spherical k-means — the
    shards the centroid router prunes best); ``"graph"`` reuses the
    cache-aware LDG streaming partitioner
    (:func:`repro.graphs.partition.greedy_edge_partition`), whose
    locality the propagation model scores via
    :func:`repro.propagation.partition_model.gamma_of_partition`.
    """
    rng = rng or np.random.default_rng(0)
    if method == "kmeans":
        if embeddings is None:
            raise ValueError("kmeans partitioning needs embeddings")
        normed = l2_normalize_rows(embeddings)
        _, assignment = _spherical_kmeans(normed, num_shards, rng)
        return assignment
    if method == "graph":
        if graph is None:
            raise ValueError("graph partitioning needs a graph")
        from ..graphs.partition import greedy_edge_partition

        return greedy_edge_partition(graph, num_shards, rng=rng)
    raise ValueError(f"unknown partition method {method!r}")


class ShardedIndex:
    """Shard-partitioned index with centroid routing and top-k merge.

    The query-plane core of the cluster, without replicas or queueing:
    per-shard :class:`BruteForceIndex`/:class:`ClusterIndex` instances
    over member rows, a :class:`CentroidRouter` over the partition, and
    :func:`merge_topk` across the fan-out. ``fanout=None`` scans every
    shard — bit-identical to the unsharded brute-force scan.
    """

    def __init__(
        self,
        embeddings: np.ndarray,
        assignment: np.ndarray,
        *,
        index: str = "brute",
        index_kwargs: dict | None = None,
        include_owner: bool = True,
        dtype=np.float64,
    ):
        self.dtype = np.dtype(dtype)
        self._raw = np.asarray(embeddings)
        self._normed = l2_normalize_rows(embeddings, dtype=self.dtype)
        self.router = CentroidRouter(self._normed, assignment)
        self.include_owner = include_owner
        self.index_kind = index
        self.index_kwargs = dict(index_kwargs or {})
        self.indexes = [
            self._build(self._raw[self.router.members(s)], s)
            for s in range(self.num_shards)
        ]
        self.last_rows_scanned = 0

    def _build(self, member_rows: np.ndarray, shard: int):
        kwargs = dict(self.index_kwargs)
        if self.index_kind == "brute":
            return BruteForceIndex(member_rows, dtype=self.dtype, **kwargs)
        if self.index_kind == "cluster":
            kwargs.setdefault("rng", np.random.default_rng(7_000 + shard))
            return ClusterIndex(member_rows, dtype=self.dtype, **kwargs)
        raise ValueError(f"unknown shard index kind {self.index_kind!r}")

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    @property
    def num_vectors(self) -> int:
        return self._normed.shape[0]

    @property
    def normed(self) -> np.ndarray:
        """The live row-normalized embedding matrix (upserts land here)."""
        return self._normed

    @property
    def assignment(self) -> np.ndarray:
        """Vertex -> shard assignment (what the upsert producer needs)."""
        return self.router.assignment

    def replace_shard(self, shard: int, vertex_ids: np.ndarray, vectors: np.ndarray) -> None:
        """Swap one shard's embeddings in (the upsert path)."""
        normed_rows = l2_normalize_rows(vectors, dtype=self.dtype)
        self._normed[vertex_ids] = normed_rows
        self.indexes[shard] = self._build(vectors, shard)
        self.router.refresh_centroid(shard, normed_rows)

    def search_ids(
        self,
        query_ids: np.ndarray,
        k: int,
        *,
        fanout: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` neighbors of indexed vertices, excluding themselves.

        ``fanout=None`` (or >= the shard count) fans out everywhere —
        the exact path; smaller values prune via centroid routing.
        """
        query_ids = np.asarray(query_ids, dtype=np.int64).ravel()
        k = max(1, min(k, self.num_vectors - 1))
        if fanout is None:
            fanout = self.num_shards
        routed = self.router.route(
            self._normed[query_ids],
            fanout,
            owners=self.router.assignment[query_ids]
            if self.include_owner
            else None,
        )
        num_q = query_ids.shape[0]
        parts_ids: list[list[np.ndarray]] = [[] for _ in range(num_q)]
        parts_sims: list[list[np.ndarray]] = [[] for _ in range(num_q)]
        scanned = 0
        # Invert routing: one batched search per shard over the queries
        # that fan out to it (the replica batching the ClusterServer does
        # per-request, collapsed into one pass).
        for s in range(self.num_shards):
            qsel = np.flatnonzero((routed == s).any(axis=1))
            members = self.router.members(s)
            if qsel.size == 0 or members.size == 0:
                continue
            index = self.indexes[s]
            k_eff = min(k + 1, index.num_vectors)
            idx_local, sims = index.search(
                self._normed[query_ids[qsel]], k_eff, normalized=True
            )
            scanned += index.last_rows_scanned
            gids = np.where(idx_local >= 0, members[idx_local], -1)
            for row, q in enumerate(qsel):
                parts_ids[q].append(gids[row])
                parts_sims[q].append(sims[row])
        self.last_rows_scanned = scanned
        idx_out = np.full((num_q, k), -1, dtype=np.int64)
        sim_out = np.full((num_q, k), -np.inf, dtype=self.dtype)
        for q in range(num_q):
            idx_out[q], sim_out[q] = merge_topk(
                parts_ids[q],
                parts_sims[q],
                k,
                exclude=int(query_ids[q]),
                dtype=self.dtype,
            )
        return idx_out, sim_out


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs for one serving cluster (see module docstring)."""

    num_shards: int = 4
    replicas: int = 2  # per shard
    fanout: int = 2  # shards scanned per query
    max_batch: int = 32
    max_wait: float = 0.0
    queue_capacity: int = 256  # per replica, pending sub-requests
    cache_capacity: int = 0  # 0 disables the merged-result cache
    hedge: bool = False
    hedge_percentile: float = 95.0
    hedge_min_samples: int = 32
    hedge_fallback: float = 0.05  # seconds, pre-warmup hedge trigger
    include_owner: bool = True  # force the query's own shard into fan-out
    shard_index: str = "brute"  # per-shard index kind
    # Kernel dispatch planning mode for the replay's similarity kernels
    # ("fast" | "reference" | "auto"; see repro.kernels.autotune).
    kernel_plan: str = "fast"

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")


@dataclass
class ClusterReplay:
    """Outcome of one cluster trace replay."""

    metrics: ServingMetrics  # cluster-level (end-to-end latencies)
    shard_metrics: list[ServingMetrics]  # per-shard sub-request view
    results: dict[int, np.ndarray] | None = None  # trace seq -> top-k ids
    stats: dict[str, float] = field(default_factory=dict)


class _Replica:
    """One shard replica: its queue and busy horizon on the virtual clock."""

    __slots__ = ("shard", "idx", "batcher", "busy_until")

    def __init__(self, shard: int, idx: int, batcher: MicroBatcher):
        self.shard = shard
        self.idx = idx
        self.batcher = batcher
        self.busy_until = 0.0

    def outstanding(self, now: float) -> int:
        return len(self.batcher) + (1 if self.busy_until > now else 0)


class _Query:
    """One trace request fanned out over shards.

    ``ctx`` is the request's :class:`~repro.obs.context.RequestContext`
    (``None`` with obs disabled): sub-request and dispatch spans hang
    off it so the whole fan-out is reconstructable from the request id.
    """

    __slots__ = ("qid", "k", "seq", "arrival", "subs", "dead", "ctx")

    def __init__(self, qid: int, k: int, seq: int, arrival: float, ctx=None):
        self.qid = qid
        self.k = k
        self.seq = seq
        self.arrival = arrival
        self.subs: list[_SubQuery] = []
        self.dead = False
        self.ctx = ctx


class _SubQuery:
    """The logical (query, shard) unit; may be dispatched more than once.

    ``span`` is the sub-request's span under the query's context root
    (closed at the winning completion); ``dspans`` collects one dispatch
    span per enqueued copy so winner/lost marking can run at settle time.
    """

    __slots__ = (
        "query", "shard", "unserviced", "best", "winner_is_hedge",
        "ids", "sims", "data_ts", "hedge_pending", "done",
        "span", "winner_span", "dspans",
    )

    def __init__(self, query: _Query, shard: int):
        self.query = query
        self.shard = shard
        self.unserviced = 0
        self.best: float | None = None  # earliest completion so far
        self.winner_is_hedge = False
        self.ids: np.ndarray | None = None
        self.sims: np.ndarray | None = None
        self.data_ts = 0.0  # produced_at of the slab the winner served
        self.hedge_pending = False  # an unfired hedge trigger exists
        self.done = False
        self.span = None
        self.winner_span = None
        self.dspans: list = []

    @property
    def resolved(self) -> bool:
        """Final: every dispatched copy serviced, no hedge still armed."""
        return (
            self.best is not None
            and self.unserviced == 0
            and not self.hedge_pending
        )


class _Dispatch:
    """One enqueued copy of a sub-query on a specific replica."""

    __slots__ = ("sub", "replica", "is_hedge", "span")

    def __init__(self, sub: _SubQuery, replica: _Replica, is_hedge: bool):
        self.sub = sub
        self.replica = replica
        self.is_hedge = is_hedge
        self.span = None


class ClusterServer:
    """Discrete-event sharded serving cluster (see module docstring)."""

    def __init__(
        self,
        embeddings: np.ndarray,
        *,
        config: ClusterConfig | None = None,
        assignment: np.ndarray | None = None,
        partition_method: str = "kmeans",
        graph=None,
        index_kwargs: dict | None = None,
        service_model: Callable[[int, int, int, int], float] | None = None,
        upserts: SlabUpsertProducer | None = None,
        rng: np.random.Generator | None = None,
        dtype=np.float64,
    ):
        self.config = config or ClusterConfig()
        cfg = self.config
        if assignment is None:
            assignment = partition_vertices(
                embeddings,
                num_shards=cfg.num_shards,
                method=partition_method,
                graph=graph,
                rng=rng or np.random.default_rng(0),
            )
        self.sharded = ShardedIndex(
            embeddings,
            assignment,
            index=cfg.shard_index,
            index_kwargs=index_kwargs,
            include_owner=cfg.include_owner,
            dtype=dtype,
        )
        self.router = self.sharded.router
        self.cache = (
            GenerationalCache(cfg.cache_capacity)
            if cfg.cache_capacity > 0
            else None
        )
        # service_model(shard, replica, batch_size, rows_scanned) -> s;
        # None measures the real kernel time (benchmark mode).
        self.service_model = service_model
        self.upserts = upserts
        self.shard_loaded_at = [0.0] * self.num_shards  # slab produced_at
        self.upserts_applied = 0

    @property
    def num_shards(self) -> int:
        return self.sharded.num_shards

    # ------------------------------------------------------------------
    # Single-request convenience path (no queueing).
    def query(self, query_id: int, k: int = 10) -> np.ndarray:
        """Top-``k`` neighbor ids of one vertex, through the cache."""
        key = (int(query_id), int(k))
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                return hit
        idx, _ = self.sharded.search_ids(
            np.array([query_id]), k, fanout=self.config.fanout
        )
        result = idx[0].copy()
        if self.cache is not None:
            routed = self.router.route(
                self.sharded.normed[[query_id]],
                self.config.fanout,
                owners=np.array([self.router.owner(query_id)])
                if self.config.include_owner
                else None,
            )
            self.cache.put(key, result, groups=tuple(int(s) for s in routed[0]))
        return result

    # ------------------------------------------------------------------
    # Trace replay.
    def serve_trace(
        self, trace: QueryTrace, *, collect_results: bool = False
    ) -> ClusterReplay:
        """Replay ``trace`` through the cluster event loop.

        With :mod:`repro.obs` enabled, emits ``cluster.*`` counters and
        histograms (fan-out width, hedge rate, replica queue depth,
        per-shard latency, staleness, upsert lag) on the shared registry.
        """
        from ..kernels import autotune

        with autotune.planning(self.config.kernel_plan), span("cluster.trace") as sp:
            replay = self._serve_trace(trace, collect_results=collect_results)
        if obs_enabled():
            sp.set(requests=len(trace), served=replay.metrics.served)
            obs_metrics.inc("cluster.requests", len(trace))
            obs_metrics.inc("cluster.served", replay.metrics.served)
            obs_metrics.inc("cluster.shed", replay.metrics.shed)
            obs_metrics.inc("cluster.cache_hits", replay.metrics.cache_hits)
            obs_metrics.inc("cluster.cache_misses", replay.metrics.cache_misses)
            obs_metrics.inc("cluster.hedges", int(replay.stats["hedges"]))
            obs_metrics.inc("cluster.hedge_wins", int(replay.stats["hedge_wins"]))
            obs_metrics.inc("cluster.upserts", int(replay.stats["upserts_applied"]))
        return replay

    def _serve_trace(
        self, trace: QueryTrace, *, collect_results: bool
    ) -> ClusterReplay:
        cfg = self.config
        metrics = ServingMetrics()
        shard_metrics = [ServingMetrics() for _ in range(self.num_shards)]
        replicas: list[_Replica] = []
        by_shard: list[list[_Replica]] = []
        for s in range(self.num_shards):
            group = [
                _Replica(
                    s,
                    r,
                    MicroBatcher(
                        max_batch=cfg.max_batch,
                        max_wait=cfg.max_wait,
                        capacity=cfg.queue_capacity,
                    ),
                )
                for r in range(cfg.replicas)
            ]
            by_shard.append(group)
            replicas.extend(group)
        policy = HedgePolicy(
            percentile=cfg.hedge_percentile,
            min_samples=cfg.hedge_min_samples,
            fallback=cfg.hedge_fallback,
        )
        dispatches: list[_Dispatch] = []  # Request.seq indexes this
        hedge_heap: list[tuple[float, int, int]] = []  # (fire, tiebreak, dispatch)
        results: dict[int, np.ndarray] | None = {} if collect_results else None
        stats = {
            "hedges": 0.0,
            "hedge_wins": 0.0,
            "hedge_dropped": 0.0,
            "subqueries": 0.0,
            "routed_queries": 0.0,
            "fanout_total": 0.0,
            "upserts_applied": 0.0,
            "max_staleness_s": 0.0,
        }
        INF = float("inf")
        i, n = 0, len(trace)
        ids, arrivals = trace.query_ids, trace.arrivals
        # Request-scoped tracing: one deterministic id namespace per
        # replay, one RequestContext per admitted query while obs is on.
        tracing = obs_enabled()
        id_prefix = f"{obs_context.new_trace_id()}.req" if tracing else ""

        def _enqueue(sub: _SubQuery, replica: _Replica, t: float, is_hedge: bool) -> bool:
            d = _Dispatch(sub, replica, is_hedge)
            seq = len(dispatches)
            if not replica.batcher.offer(Request(sub.query.qid, sub.query.k, t, seq)):
                return False
            dispatches.append(d)
            sub.unserviced += 1
            ctx = sub.query.ctx
            if ctx is not None:
                d.span = ctx.child(
                    "cluster.dispatch",
                    t,
                    parent=sub.span,
                    shard=sub.shard,
                    replica=replica.idx,
                    hedge=is_hedge,
                )
                sub.dspans.append(d.span)
            if obs_enabled():
                obs_metrics.observe(
                    "cluster.replica_queue_depth", replica.outstanding(t)
                )
            return True

        def _finalize(q: _Query) -> None:
            idx, _ = merge_topk(
                [s.ids for s in q.subs],
                [s.sims for s in q.subs],
                q.k,
                exclude=q.qid,
                dtype=self.sharded.dtype,
            )
            completion = max(s.best for s in q.subs)
            metrics.observe_completion(q.arrival, completion)
            if obs_enabled():
                obs_metrics.observe(
                    "cluster.latency_seconds",
                    max(completion - q.arrival, 0.0),
                    request_id=q.ctx.request_id if q.ctx is not None else None,
                )
            if q.ctx is not None:
                q.ctx.finish(completion, fanout=len(q.subs))
            if self.cache is not None:
                self.cache.put(
                    (q.qid, q.k),
                    idx,
                    groups=tuple(s.shard for s in q.subs),
                )
            if results is not None:
                results[q.seq] = idx

        def _run_batch(replica: _Replica, t_start: float) -> None:
            batch = replica.batcher.take()
            alive = [dispatches[r.seq] for r in batch if not dispatches[r.seq].sub.query.dead]
            for r in batch:
                d = dispatches[r.seq]
                if d.sub.query.dead and d.span is not None:
                    # The query was shed after this copy was enqueued: the
                    # copy never runs, matching a real cancellation signal.
                    d.span.attrs["cancelled"] = True
            if not alive:
                return  # shed queries only: no work, no time
            shard = replica.shard
            index = self.sharded.indexes[shard]
            qids = np.fromiter(
                (d.sub.query.qid for d in alive), dtype=np.int64, count=len(alive)
            )
            kmax = max(d.sub.query.k for d in alive)
            k_eff = min(kmax + 1, index.num_vectors)
            with span("cluster.batch") as batch_sp:
                t0 = time.perf_counter()
                idx_local, sims = index.search(
                    self.sharded.normed[qids], k_eff, normalized=True
                )
                measured = time.perf_counter() - t0
                rows = getattr(index, "last_rows_scanned", 0)
                if obs_enabled():
                    batch_sp.set(shard=shard, size=len(alive), rows=rows)
                    obs_metrics.inc("cluster.batches")
                    obs_metrics.inc("cluster.rows_scanned", rows)
                    obs_metrics.observe("cluster.batch_size", len(alive))
            duration = (
                measured
                if self.service_model is None
                else self.service_model(shard, replica.idx, len(alive), rows)
            )
            completion = t_start + duration
            replica.busy_until = completion
            shard_metrics[shard].batches += 1
            shard_metrics[shard].rows_scanned += rows
            shard_metrics[shard].service_time_total += duration
            members = self.router.members(shard)
            gids = np.where(idx_local >= 0, members[idx_local], -1)
            data_ts = self.shard_loaded_at[shard]
            for row, d in enumerate(alive):
                sub = d.sub
                sub.unserviced -= 1
                if d.span is not None:
                    d.span.t_end = completion
                    d.span.set(
                        queue_s=max(t_start - d.span.t_start, 0.0),
                        service_s=duration,
                        batch_size=len(alive),
                    )
                if sub.best is None or completion < sub.best:
                    sub.best = completion
                    sub.winner_is_hedge = d.is_hedge
                    sub.winner_span = d.span
                    sub.ids = gids[row]
                    sub.sims = sims[row]
                    sub.data_ts = data_ts
                _settle(sub)

        def _admit(qid: int, t: float, seq: int) -> None:
            metrics.observe_arrival(t)
            ctx = (
                obs_context.RequestContext(
                    obs_context.new_request_id(id_prefix), t, qid=qid, k=trace.k
                )
                if tracing
                else None
            )
            if self.cache is not None:
                t0 = time.perf_counter()
                hit = self.cache.get((qid, trace.k))
                lookup = time.perf_counter() - t0
                if hit is not None:
                    metrics.cache_hits += 1
                    cost = lookup if self.service_model is None else 0.0
                    metrics.observe_completion(t, t + cost)
                    if ctx is not None:
                        ctx.child("cluster.cache_hit", t, t_end=t + cost)
                        ctx.finish(t + cost)
                        obs_metrics.observe(
                            "cluster.latency_seconds", cost,
                            request_id=ctx.request_id,
                        )
                    elif obs_enabled():
                        obs_metrics.observe("cluster.latency_seconds", cost)
                    if results is not None:
                        results[seq] = hit
                    return
                metrics.cache_misses += 1
            routed = self.router.route(
                self.sharded.normed[[qid]],
                cfg.fanout,
                owners=np.array([self.router.owner(qid)])
                if cfg.include_owner
                else None,
            )[0]
            if obs_enabled():
                obs_metrics.observe("cluster.fanout_width", routed.size)
            stats["fanout_total"] += routed.size
            stats["routed_queries"] += 1
            q = _Query(qid, trace.k, seq, t, ctx=ctx)
            if ctx is not None:
                ctx.child(
                    "cluster.route", t, t_end=t,
                    shards=[int(s) for s in routed],
                )
            for s in routed:
                s = int(s)
                group = by_shard[s]
                pick = LeastOutstandingDispatcher.pick(
                    [r.outstanding(t) for r in group]
                )
                sub = _SubQuery(q, s)
                if ctx is not None:
                    sub.span = ctx.child("cluster.subrequest", t, shard=s)
                if not _enqueue(sub, group[pick], t, is_hedge=False):
                    q.dead = True
                    metrics.shed += 1
                    if ctx is not None:
                        ctx.finish(t, shed=True)
                    flight_event(
                        "cluster.shed",
                        qid=qid,
                        shard=s,
                        virtual_t=t,
                        request_id=ctx.request_id if ctx is not None else None,
                    )
                    return
                q.subs.append(sub)
                stats["subqueries"] += 1
                if cfg.hedge and len(group) > 1:
                    sub.hedge_pending = True
                    heapq.heappush(
                        hedge_heap,
                        (
                            t + policy.threshold(),
                            len(dispatches) - 1,
                            len(dispatches) - 1,
                        ),
                    )

        def _settle(sub: _SubQuery) -> None:
            """Resolve the sub (and maybe its query) exactly once."""
            if sub.done or not sub.resolved:
                return
            sub.done = True
            self._resolve_sub(sub, policy, shard_metrics[sub.shard], stats)
            q = sub.query
            if not q.dead and all(s.done for s in q.subs):
                _finalize(q)

        def _fire_hedge(t: float, d_idx: int) -> None:
            primary = dispatches[d_idx]
            sub = primary.sub
            sub.hedge_pending = False
            if sub.query.dead:
                return
            if sub.best is not None and sub.best <= t:
                _settle(sub)  # answered before the trigger: no duplicate
                return
            group = by_shard[sub.shard]
            others = [r for r in group if r is not primary.replica]
            pick = LeastOutstandingDispatcher.pick(
                [r.outstanding(t) for r in others]
            )
            rid = (
                sub.query.ctx.request_id if sub.query.ctx is not None else None
            )
            if _enqueue(sub, others[pick], t, is_hedge=True):
                stats["hedges"] += 1
                flight_event(
                    "cluster.hedge_fired",
                    shard=sub.shard,
                    virtual_t=t,
                    request_id=rid,
                    **policy.describe(),
                )
            else:
                stats["hedge_dropped"] += 1
                flight_event(
                    "cluster.hedge_dropped",
                    shard=sub.shard,
                    virtual_t=t,
                    request_id=rid,
                )
                _settle(sub)

        while True:
            t_arr = float(arrivals[i]) if i < n else INF
            t_batch, batch_replica = INF, None
            for r in replicas:
                if len(r.batcher):
                    tr = r.batcher.ready_time(r.busy_until)
                    if tr < t_batch:
                        t_batch, batch_replica = tr, r
            t_hedge = hedge_heap[0][0] if hedge_heap else INF
            t_next = min(t_arr, t_batch, t_hedge)
            if t_next == INF:
                break
            self._apply_upserts(t_next, stats)
            # Tie priority: batch dispatch, then hedge trigger, then
            # arrival — matching the single server's dispatch-wins rule.
            if t_batch <= t_hedge and t_batch <= t_arr:
                _run_batch(batch_replica, t_batch)
            elif t_hedge <= t_arr:
                _, _, d_idx = heapq.heappop(hedge_heap)
                _fire_hedge(t_hedge, d_idx)
            else:
                _admit(int(ids[i]), t_arr, i)
                i += 1
        metrics.last_completion = max(
            [metrics.last_completion] + [r.busy_until for r in replicas]
        )
        stats["mean_fanout"] = (
            stats["fanout_total"] / stats["routed_queries"]
            if stats["routed_queries"]
            else 0.0
        )
        return ClusterReplay(
            metrics=metrics,
            shard_metrics=shard_metrics,
            results=results,
            stats=stats,
        )

    def _resolve_sub(
        self,
        sub: _SubQuery,
        policy: HedgePolicy,
        sm: ServingMetrics,
        stats: dict[str, float],
    ) -> None:
        """Bookkeeping when a sub-query's fastest copy is known final."""
        latency = max(sub.best - sub.query.arrival, 0.0)
        policy.observe(latency)
        sm.observe_completion(sub.query.arrival, sub.best)
        staleness = max(sub.best - sub.data_ts, 0.0)
        stats["max_staleness_s"] = max(stats["max_staleness_s"], staleness)
        if sub.winner_is_hedge:
            stats["hedge_wins"] += 1
        # Close the sub-request span at the winning completion and mark
        # every dispatched copy's outcome on its span.
        if sub.span is not None:
            sub.span.t_end = sub.best
            for dspan in sub.dspans:
                if dspan is sub.winner_span:
                    dspan.attrs["winner"] = True
                elif "cancelled" not in dspan.attrs:
                    dspan.attrs["lost"] = True
        if obs_enabled():
            obs_metrics.observe(
                f"cluster.shard.{sub.shard}.latency_seconds",
                latency,
                request_id=(
                    sub.query.ctx.request_id
                    if sub.query.ctx is not None
                    else None
                ),
            )
            obs_metrics.observe("cluster.staleness_seconds", staleness)

    def _apply_upserts(self, now: float, stats: dict[str, float]) -> None:
        """Swap in every slab produced at or before virtual ``now``."""
        if self.upserts is None:
            return
        for slab in self.upserts.pending(now):
            self.sharded.replace_shard(slab.shard, slab.vertex_ids, slab.vectors)
            if self.cache is not None:
                self.cache.invalidate(group=slab.shard)
            self.shard_loaded_at[slab.shard] = slab.produced_at
            self.upserts_applied += 1
            stats["upserts_applied"] += 1
            lag = max(now - slab.produced_at, 0.0)
            if obs_enabled():
                obs_metrics.inc("cluster.upserts_applied")
                obs_metrics.observe("cluster.upsert_lag_seconds", lag)
