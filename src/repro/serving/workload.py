"""Synthetic query workloads for the serving benchmarks.

Real retrieval traffic is popularity-skewed. We model query popularity
as a Zipf law over vertex rank — ``P(rank r) ∝ (r+1)^-skew`` — which is
the request-side analogue of the Amazon profile's power-law *degree*
distribution (Table I): the same hub vertices that dominate edges
dominate lookups in any degree-correlated workload. Arrivals are Poisson
at a configurable offered rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QueryTrace", "zipf_trace"]


@dataclass(frozen=True)
class QueryTrace:
    """A replayable request stream: parallel arrays of ids and arrivals."""

    query_ids: np.ndarray  # (n,) int64 vertex ids
    arrivals: np.ndarray  # (n,) float64 seconds, non-decreasing
    k: int  # neighbors requested per query
    skew: float  # Zipf exponent the ids were drawn with

    def __post_init__(self) -> None:
        if self.query_ids.shape != self.arrivals.shape:
            raise ValueError("query_ids and arrivals must align")
        if np.any(np.diff(self.arrivals) < 0):
            raise ValueError("arrivals must be non-decreasing")
        if self.k < 1:
            raise ValueError("k must be >= 1")

    def __len__(self) -> int:
        return int(self.query_ids.shape[0])

    @property
    def offered_rate(self) -> float:
        """Mean arrival rate (requests/second) over the trace span."""
        if len(self) < 2:
            return 0.0
        span = float(self.arrivals[-1] - self.arrivals[0])
        return (len(self) - 1) / span if span > 0 else float("inf")

    def unique_queries(self) -> np.ndarray:
        """Distinct vertex ids appearing in the trace (sorted)."""
        return np.unique(self.query_ids)

    def rescaled(self, rate: float) -> "QueryTrace":
        """Same queries, arrival gaps rescaled to a new offered rate."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        current = self.offered_rate
        if current in (0.0, float("inf")):
            raise ValueError("trace has no usable span to rescale")
        factor = current / rate
        return QueryTrace(
            query_ids=self.query_ids,
            arrivals=(self.arrivals - self.arrivals[0]) * factor,
            k=self.k,
            skew=self.skew,
        )


def zipf_trace(
    num_queries: int,
    num_vertices: int,
    *,
    skew: float = 1.1,
    rate: float = 1000.0,
    k: int = 10,
    rng: np.random.Generator | None = None,
) -> QueryTrace:
    """Zipf-skewed query ids with Poisson arrivals.

    Popularity rank is decoupled from vertex id by a random permutation,
    so hot vertices are scattered across the id space (as they are in a
    relabeled real graph). All randomness flows through ``rng``.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    if num_vertices < 1:
        raise ValueError("num_vertices must be >= 1")
    if skew < 0:
        raise ValueError("skew must be >= 0")
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = rng or np.random.default_rng(0)
    weights = (np.arange(num_vertices, dtype=np.float64) + 1.0) ** (-skew)
    weights /= weights.sum()
    ranks = rng.choice(num_vertices, size=num_queries, p=weights)
    rank_to_vertex = rng.permutation(num_vertices)
    gaps = rng.exponential(scale=1.0 / rate, size=num_queries)
    gaps[0] = 0.0
    return QueryTrace(
        query_ids=rank_to_vertex[ranks].astype(np.int64),
        arrivals=np.cumsum(gaps),
        k=k,
        skew=skew,
    )
