"""Protein-function prediction: proposed method vs all three baselines.

The paper's introduction motivates graph embedding with protein-function
prediction (PPI). This example trains the graph-sampling GCN and the three
baselines (GraphSAGE, FastGCN, Batched GCN) on the PPI profile with the
same 2-layer architecture and reports time-to-accuracy, reproducing the
Figure 2 comparison on one dataset.

Usage::

    python examples/ppi_protein_function.py
"""

from __future__ import annotations

import time

from repro import GraphSamplingTrainer, TrainConfig, make_dataset
from repro.baselines import (
    BatchedGCNConfig,
    BatchedGCNTrainer,
    FastGCNConfig,
    FastGCNTrainer,
    GraphSAGETrainer,
    SageConfig,
)

HIDDEN = (128, 128)


def run_all() -> dict[str, object]:
    dataset = make_dataset("ppi", scale=0.08, seed=0)
    print(f"dataset: {dataset.graph}\n")
    results = {}

    t0 = time.perf_counter()
    proposed = GraphSamplingTrainer(
        dataset,
        TrainConfig(
            hidden_dims=HIDDEN, frontier_size=40, budget=200, lr=0.01,
            epochs=25, eval_every=5,
        ),
    )
    results["proposed (graph sampling)"] = proposed.train()
    print(f"proposed done in {time.perf_counter() - t0:.1f}s")

    t0 = time.perf_counter()
    sage = GraphSAGETrainer(
        dataset,
        SageConfig(hidden_dims=HIDDEN, fanouts=(25, 10), batch_size=128, epochs=8),
    )
    results["graphsage (edge layer sampling)"] = sage.train()
    print(f"graphsage done in {time.perf_counter() - t0:.1f}s")

    t0 = time.perf_counter()
    fast = FastGCNTrainer(
        dataset,
        FastGCNConfig(hidden_dims=HIDDEN, layer_sizes=(400, 400), batch_size=128, epochs=8),
    )
    results["fastgcn (node layer sampling)"] = fast.train()
    print(f"fastgcn done in {time.perf_counter() - t0:.1f}s")

    t0 = time.perf_counter()
    batched = BatchedGCNTrainer(
        dataset, BatchedGCNConfig(hidden_dims=HIDDEN, batch_size=128, epochs=8)
    )
    results["batched gcn (full propagation)"] = batched.train()
    print(f"batched done in {time.perf_counter() - t0:.1f}s")
    return results


def main() -> None:
    results = run_all()
    print(f"\n{'method':<36} {'final val F1':>12} {'wall s':>8}")
    for name, res in results.items():
        wall = res.epochs[-1].wall_seconds_total
        print(f"{name:<36} {res.final_val_f1:>12.4f} {wall:>8.1f}")

    print(
        "\nNote: per the paper (Section VI-B), the comparison of interest is"
        "\ntime to reach a common accuracy threshold with single-thread"
        "\nexecution; run `pytest benchmarks/bench_fig2_time_accuracy.py"
        " --benchmark-only`\nfor the full four-dataset version with the"
        " threshold rule applied."
    )


if __name__ == "__main__":
    main()
