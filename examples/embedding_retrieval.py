"""Embedding extraction and retrieval — the paper's end product.

Graph embedding "facilitates data mining on graphs ... such as content
recommendation" (Section I). This example trains a GS-GCN on the Reddit
profile, extracts final-layer vertex embeddings, and uses them for
nearest-neighbor retrieval; it reports label homogeneity of the retrieved
neighbors against a shuffled base rate, and saves/reloads the model with
the checkpoint API.

Usage::

    python examples/embedding_retrieval.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import GraphSamplingTrainer, TrainConfig, make_dataset
from repro.nn.network import GCN
from repro.train import (
    compute_embeddings,
    cosine_nearest_neighbors,
    embedding_report,
    load_checkpoint,
    save_checkpoint,
)


def main() -> None:
    dataset = make_dataset("reddit", scale=0.008, seed=0)
    print(f"dataset: {dataset.graph}")

    trainer = GraphSamplingTrainer(
        dataset,
        TrainConfig(
            hidden_dims=(64, 64),
            frontier_size=30,
            budget=300,
            lr=0.005,
            epochs=10,
            eval_every=10,
        ),
    )
    result = trainer.train()
    print(f"trained: val F1 = {result.final_val_f1:.4f}")

    # ------------------------------------------------------------------
    # Checkpoint round-trip.
    with tempfile.TemporaryDirectory() as tmp:
        path = save_checkpoint(trainer.model, f"{tmp}/model")
        print(f"checkpoint written: {path.name}")
        restored = GCN(
            dataset.attribute_dim,
            [64, 64],
            dataset.num_classes,
            seed=123,  # different init — overwritten by the checkpoint
        )
        load_checkpoint(restored, path)

    # ------------------------------------------------------------------
    # Embedding extraction + retrieval.
    embeddings = compute_embeddings(restored, dataset)
    print(f"embeddings: {embeddings.shape}")

    rng = np.random.default_rng(0)
    queries = rng.choice(dataset.num_vertices, size=3, replace=False)
    idx, sims = cosine_nearest_neighbors(embeddings, queries, k=5)
    for q, row, s in zip(queries, idx, sims):
        labels = dataset.labels[row]
        print(
            f"query v{q} (label {dataset.labels[q]}): "
            f"neighbors {row.tolist()} labels {labels.tolist()} "
            f"sims {[round(float(x), 3) for x in s]}"
        )

    report = embedding_report(restored, dataset, k=10)
    print("\nembedding quality:")
    for key, value in report.items():
        print(f"  {key:<24} {value:.3f}")


if __name__ == "__main__":
    main()
