"""Serving trained embeddings — from training loop to query loop.

Trains a GS-GCN on the Reddit profile, extracts final-layer embeddings,
builds the cluster-pruned ANN index over them, and replays a Zipf-skewed
query trace through the full serving stack (micro-batching + LRU cache +
ANN with deadline degradation), comparing it against the naive
per-request brute-force server. Finishes with an embedding refresh to
show cache invalidation, then scales the same stack out to a sharded,
replicated cluster whose shards come from a graph partition
(`greedy_edge_partition`), scored by its Eq. 3/4 gamma.

Usage::

    python examples/serving_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import GraphSamplingTrainer, TrainConfig, make_dataset
from repro.graphs import greedy_edge_partition
from repro.propagation import gamma_of_partition
from repro.serving import (
    BruteForceIndex,
    ClusterConfig,
    ClusterServer,
    EmbeddingServer,
    ServerConfig,
    recall_at_k,
    zipf_trace,
)
from repro.train import compute_embeddings


def replay(name, server, trace):
    r = server.serve_trace(trace, collect_results=True)
    m = r.metrics
    print(
        f"  {name:<16} throughput {m.throughput:8.0f} qps | "
        f"p50 {m.latency.percentile(50) * 1e3:6.2f} ms | "
        f"p99 {m.latency.percentile(99) * 1e3:6.2f} ms | "
        f"hit {m.hit_rate:.0%} | shed {m.shed}"
    )
    return r


def main() -> None:
    dataset = make_dataset("reddit", scale=0.008, seed=0)
    trainer = GraphSamplingTrainer(
        dataset,
        TrainConfig(
            hidden_dims=(64, 64),
            frontier_size=30,
            budget=300,
            lr=0.005,
            epochs=8,
            eval_every=8,
        ),
    )
    result = trainer.train()
    print(f"trained: val F1 = {result.final_val_f1:.4f}")

    embeddings = compute_embeddings(trainer.model, dataset)
    n = embeddings.shape[0]
    print(f"embeddings: {embeddings.shape}")

    # A popularity-skewed request stream, offered fast enough to load the
    # naive server well past capacity.
    trace = zipf_trace(
        2000, n, skew=1.1, rate=20000.0, k=10, rng=np.random.default_rng(0)
    )

    naive = EmbeddingServer(
        embeddings,
        config=ServerConfig(max_batch=1, queue_capacity=128),
    )
    full = EmbeddingServer(
        embeddings,
        index="cluster",
        index_kwargs={"num_clusters": 32, "probes": 6},
        config=ServerConfig(
            max_batch=64,
            queue_capacity=128,
            cache_capacity=1024,
            deadline=0.05,
        ),
    )

    print("\nreplaying the trace:")
    r_naive = replay("naive", naive, trace)
    r_full = replay("batched+cache+ann", full, trace)

    # Score the approximate answers against the exact oracle.
    served = sorted(set(r_naive.results) & set(r_full.results))
    if served:
        exact, _ = BruteForceIndex(embeddings).search_ids(
            trace.query_ids[served], trace.k
        )
        approx = np.stack([r_full.results[s] for s in served])
        print(f"  recall@{trace.k} of the full stack: "
              f"{recall_at_k(approx, exact):.3f}")

    # Refreshing the embeddings invalidates every cached result.
    full.refresh_embeddings(embeddings + 0.01)
    print(f"\nafter refresh: cached entries = {len(full.cache)} "
          f"(generation {full.cache.generation})")

    # Scale out: shard the same index across a simulated cluster.
    # Partition by graph structure (LDG streaming) instead of k-means so
    # co-cited vertices share a shard; gamma is the Eq. 3/4 communication
    # factor of that partition — the same number the propagation layer
    # prices, reused here to judge the serving layout.
    num_shards = 4
    assignment = greedy_edge_partition(
        dataset.graph, num_shards, rng=np.random.default_rng(0)
    )
    gamma = gamma_of_partition(dataset.graph, assignment)
    print(f"\ngraph partition into {num_shards} shards: "
          f"gamma = {gamma:.3f} (1/parts = {1 / num_shards:.3f} ideal)")

    cluster = ClusterServer(
        embeddings,
        config=ClusterConfig(
            num_shards=num_shards,
            replicas=2,
            fanout=2,
            max_batch=64,
            queue_capacity=128,
            cache_capacity=1024,
            hedge=True,
        ),
        assignment=assignment,
    )
    print(f"cluster: {num_shards} shards x 2 replicas, fan-out 2")
    r_cluster = replay("cluster", cluster, trace)

    served = sorted(set(r_naive.results) & set(r_cluster.results))
    if served:
        exact, _ = BruteForceIndex(embeddings).search_ids(
            trace.query_ids[served], trace.k
        )
        approx = np.stack([r_cluster.results[s] for s in served])
        print(f"  recall@{trace.k} of the cluster at fan-out 2: "
              f"{recall_at_k(approx, exact):.3f} | "
              f"mean fan-out {r_cluster.stats['mean_fanout']:.2f} | "
              f"hedges {r_cluster.stats['hedges']:.0f}")


if __name__ == "__main__":
    main()
