"""Deeper GCNs: the Table II experiment at example scale.

Section VI-D shows the graph-sampling design's advantage *grows* with
depth: per-epoch work is linear in L, while layer sampling explodes like
fanout^L. This example trains 1-, 2- and 3-layer GS-GCNs on the Reddit
profile, prints their accuracy and per-epoch cost, and contrasts with the
analytic layer-sampling work of an equivalent GraphSAGE configuration.

Usage::

    python examples/deeper_gcn.py
"""

from __future__ import annotations

from repro import GraphSamplingTrainer, TrainConfig, make_dataset, xeon_40core
from repro.analysis.complexity import (
    gs_gcn_epoch_ops,
    layer_sampling_epoch_ops,
)
from repro.experiments.repricing import iteration_time, phase_times_per_iteration


def main() -> None:
    dataset = make_dataset("reddit", scale=0.01, seed=0)
    machine = xeon_40core()
    n_train = dataset.train_idx.shape[0]
    print(f"dataset: {dataset.graph}, training vertices: {n_train}\n")

    print(f"{'L':>2} {'val F1':>8} {'epoch cost (1 core)':>20} "
          f"{'epoch cost (40 cores)':>22} {'SAGE work ratio':>16}")
    for layers in (1, 2, 3):
        cfg = TrainConfig(
            hidden_dims=(128,) * layers,
            frontier_size=60,
            budget=380,
            lr=0.005,
            epochs=6,
            eval_every=6,
            seed=0,
        )
        trainer = GraphSamplingTrainer(dataset, cfg)
        result = trainer.train()
        metrics = result.iteration_metrics
        batches = trainer.batches_per_epoch
        t1 = iteration_time(phase_times_per_iteration(metrics, machine, cores=1))
        t40 = iteration_time(phase_times_per_iteration(metrics, machine, cores=40))

        # Analytic comparison: GraphSAGE's epoch work over ours (Eq. 1
        # based; fanout 10, paper-ratio batch size).
        sage_ops = layer_sampling_epoch_ops(
            num_train=n_train,
            batch_size=max(8, n_train * 512 // 153_000),
            fanouts=(10,) * layers,
            f=128,
            num_vertices=n_train,
        )
        gs_ops = gs_gcn_epoch_ops(
            num_layers=layers, num_vertices=n_train, subgraph_degree=10.0, f=128
        )
        print(
            f"{layers:>2} {result.final_val_f1:>8.4f} {t1 * batches:>20.3g} "
            f"{t40 * batches:>22.3g} {sage_ops / gs_ops:>16.1f}"
        )

    print(
        "\nShapes to note (cf. Table II): GS-GCN epoch cost grows ~linearly"
        "\nwith L, while the layer-sampling work ratio grows by orders of"
        "\nmagnitude — deeper GCNs are where graph sampling wins biggest."
    )


if __name__ == "__main__":
    main()
