"""Extending the sampler interface (the paper's future-work direction).

Section VII: "We will extend the parallel sampler implementation to
support a wider class of sampling algorithms, so as to make our model more
generic." This example implements a *custom* sampler — degree-weighted
node sampling with a locality boost — against the public
:class:`~repro.sampling.GraphSampler` interface and plugs it into the
unmodified trainer, then compares it with the built-in frontier sampler.

Usage::

    python examples/custom_sampler.py
"""

from __future__ import annotations

import numpy as np

from repro import GraphSamplingTrainer, TrainConfig, make_dataset
from repro.sampling import GraphSampler, SampledSubgraph


class DegreeWeightedNodeSampler(GraphSampler):
    """Sample seed vertices proportional to degree, then add one random
    neighbor per seed (a cheap locality boost so the induced subgraph is
    not edge-starved)."""

    def __init__(self, graph, *, budget: int) -> None:
        super().__init__(graph)
        if not (0 < budget <= graph.num_vertices):
            raise ValueError("budget must lie in [1, num_vertices]")
        self.budget = budget
        deg = graph.degrees.astype(np.float64)
        self._probs = deg / deg.sum()

    def sample(self, rng: np.random.Generator) -> SampledSubgraph:
        seeds = rng.choice(
            self.graph.num_vertices,
            size=self.budget // 2,
            replace=False,
            p=self._probs,
        )
        companions = self.graph.random_neighbors(seeds, rng)
        vertices = np.concatenate([seeds, companions])
        subgraph, vertex_map = self.graph.induced_subgraph(vertices)
        return SampledSubgraph(
            graph=subgraph,
            vertex_map=vertex_map,
            stats={"unique_vertices": float(vertex_map.size)},
        )


def train_with(name: str, dataset, sampler=None) -> None:
    cfg = TrainConfig(
        hidden_dims=(64, 64),
        frontier_size=40,
        budget=240,
        lr=0.005,
        epochs=12,
        eval_every=12,
        seed=0,
    )
    if sampler is not None:
        ref = GraphSamplingTrainer(dataset, cfg)  # supplies the train graph
        trainer = GraphSamplingTrainer(
            dataset, cfg, sampler=sampler(ref.train_graph)
        )
    else:
        trainer = GraphSamplingTrainer(dataset, cfg)
    result = trainer.train()
    print(f"{name:<28} val F1 = {result.final_val_f1:.4f}")


def main() -> None:
    dataset = make_dataset("reddit", scale=0.008, seed=0)
    print(f"dataset: {dataset.graph}\n")
    train_with("frontier (built-in)", dataset)
    train_with(
        "degree-weighted (custom)",
        dataset,
        sampler=lambda g: DegreeWeightedNodeSampler(g, budget=240),
    )
    print(
        "\nAny object with `.sample(rng) -> SampledSubgraph` drops into the"
        "\ntrainer; the scheduler, cost accounting and evaluation are reused."
    )


if __name__ == "__main__":
    main()
