"""Scaling simulation: reproduce the paper's Figure 3/4 curves locally.

Runs one metered training run on the Reddit profile and re-prices it on
the simulated dual-socket 40-core Xeon at 1-40 cores, printing:

* per-phase speedups (sampling / feature propagation / weight application)
  and the iteration total — Figure 3 A-C;
* the execution-time breakdown per core count — Figure 3 D;
* the frontier sampler's inter-instance scaling and AVX gain — Figure 4.

Usage::

    python examples/scaling_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro import TrainConfig, GraphSamplingTrainer, make_dataset, xeon_40core
from repro.experiments.repricing import phase_times_per_iteration
from repro.sampling import DashboardFrontierSampler, simulated_sampler_time

CORES = (1, 5, 10, 20, 40)


def main() -> None:
    dataset = make_dataset("reddit", scale=0.01, seed=0)
    machine = xeon_40core()
    print(f"dataset: {dataset.graph}")
    print(
        f"simulated platform: {machine.num_cores} cores "
        f"({machine.num_sockets} sockets), AVX x{machine.vector_lanes}, "
        f"L2 {machine.l2_bytes // 1024} KB"
    )

    # --- Figure 3: metered training, re-priced at each core count -------
    cfg = TrainConfig(
        hidden_dims=(512, 512), frontier_size=60, budget=380, epochs=1,
        eval_every=10**9, seed=0,
    )
    trainer = GraphSamplingTrainer(dataset, cfg)
    result = trainer.train()
    metrics = result.iteration_metrics

    base = phase_times_per_iteration(metrics, machine, cores=1)
    base_total = sum(base.values())
    print("\nFigure 3 — phase speedups vs cores (hidden dim 512):")
    print(f"{'cores':>5} {'iteration':>10} {'featprop':>9} {'weight':>7} "
          f"{'| sampling%':>11} {'featprop%':>10} {'weight%':>8}")
    for cores in CORES:
        phases = phase_times_per_iteration(metrics, machine, cores=cores)
        total = sum(phases.values())
        print(
            f"{cores:>5} {base_total / total:>10.2f} "
            f"{base['feature_propagation'] / phases['feature_propagation']:>9.2f} "
            f"{base['weight_application'] / phases['weight_application']:>7.2f} "
            f"| {phases['sampling'] / total:>9.2%} "
            f"{phases['feature_propagation'] / total:>9.2%} "
            f"{phases['weight_application'] / total:>8.2%}"
        )

    # --- Figure 4: sampler scaling --------------------------------------
    sampler = DashboardFrontierSampler(
        trainer.train_graph, frontier_size=60, budget=380, eta=2.0
    )
    rng = np.random.default_rng(0)
    stats = [sampler.sample(rng).stats for _ in range(12)]
    base_cost = np.mean(
        [simulated_sampler_time(s, machine, p_intra=8) for s in stats]
    )
    print("\nFigure 4A — sampler throughput speedup vs p_inter (AVX on):")
    for p in CORES:
        contention = machine.sampler_contention_factor(p)
        per_inst = np.mean(
            [
                simulated_sampler_time(
                    s, machine, p_intra=8, contention_factor=contention
                )
                for s in stats
            ]
        )
        print(f"  p_inter={p:>2}: {p * base_cost / per_inst:>6.2f}x")

    print("\nFigure 4B — AVX gain (p_intra 8 vs 1):")
    t1 = np.mean([simulated_sampler_time(s, machine, p_intra=1) for s in stats])
    t8 = np.mean([simulated_sampler_time(s, machine, p_intra=8) for s in stats])
    print(f"  {t1 / t8:.2f}x (paper: ~4x average, degree-dependent)")


if __name__ == "__main__":
    main()
