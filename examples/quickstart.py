"""Quickstart: train the graph-sampling GCN on a synthetic PPI-profile graph.

Runs in ~30 seconds on a laptop. Demonstrates the three-line core API:
make a dataset, configure training, train — then evaluates on the test
split and prints the simulated-parallel-time breakdown.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GraphSamplingTrainer, TrainConfig, make_dataset


def main() -> None:
    # A scaled instance of the paper's PPI dataset (Table I profile):
    # multi-label protein-function prediction, 121 classes.
    dataset = make_dataset("ppi", scale=0.08, seed=0)
    print(f"dataset: {dataset.name}, {dataset.graph}")
    print(
        f"attributes: {dataset.attribute_dim}-dim, "
        f"{dataset.num_classes} classes ({dataset.task}-label)"
    )

    config = TrainConfig(
        hidden_dims=(128, 128),  # 2-layer GCN, as in the paper's Figure 2
        frontier_size=50,        # m: frontier size of the sampler
        budget=300,              # n: vertices per sampled subgraph
        lr=0.01,
        epochs=30,
        eval_every=5,
    )
    trainer = GraphSamplingTrainer(dataset, config)
    result = trainer.train()

    print("\nepoch  train-loss  val-F1(micro)")
    for rec in result.epochs:
        if rec.val is not None:
            print(f"{rec.epoch:>5}  {rec.train_loss:>10.4f}  {rec.val.f1_micro:>12.4f}")

    test = trainer.evaluator.evaluate(trainer.model, "test")
    print(f"\ntest F1-micro: {test.f1_micro:.4f}  F1-macro: {test.f1_macro:.4f}")

    breakdown = result.trace.breakdown()
    print("\nsimulated time breakdown (1 core):")
    for phase, frac in breakdown.items():
        print(f"  {phase:<20} {frac:6.1%}")


if __name__ == "__main__":
    main()
