"""Docs health checker: link integrity + architecture/code agreement.

Two checks, both runnable standalone (``python tools/check_docs.py``) and
from the test suite (``tests/docs/test_docs_health.py``) so CI and tier-1
enforce the same thing:

1. **Links** — every intra-repo markdown link (``[text](path)`` and bare
   relative paths in ``docs/*.md``, ``README.md``, etc.) must resolve to
   an existing file, and every ``#fragment`` into a markdown file must
   match one of its headings.
2. **Modules** — every ``repro.*`` dotted module named in
   ``docs/architecture.md`` must import, so the architecture tour cannot
   drift from the package layout. Code paths like ``repro/obs/trace.py``
   referenced in any checked doc must exist under ``src/``.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose links and code references are checked.
DOC_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/architecture.md",
    "docs/kernels.md",
    "docs/observability.md",
    "docs/paper_mapping.md",
    "docs/sampling.md",
)

_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_MODULE_RE = re.compile(r"`(repro(?:\.[a-z_]+)+)")
_CODE_PATH_RE = re.compile(
    r"`((?:repro|tests|benchmarks|examples|tools)/[\w/]+\.py)"
)


def _heading_anchors(md_path: Path) -> set[str]:
    """GitHub-style anchors for every heading in a markdown file."""
    anchors = set()
    for line in md_path.read_text(encoding="utf-8").splitlines():
        m = re.match(r"#+\s+(.*)", line)
        if not m:
            continue
        text = re.sub(r"[`*]", "", m.group(1)).strip().lower()
        text = re.sub(r"[^\w\- ]", "", text)
        anchors.add(text.replace(" ", "-"))
    return anchors


def check_links(root: Path = REPO_ROOT) -> list[str]:
    """Return a list of broken intra-repo links across DOC_FILES."""
    errors = []
    for rel in DOC_FILES:
        doc = root / rel
        if not doc.exists():
            errors.append(f"{rel}: checked doc file is missing")
            continue
        text = doc.read_text(encoding="utf-8")
        for target in _LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            if not path_part:  # same-file fragment
                dest = doc
            else:
                dest = (doc.parent / path_part).resolve()
                if not dest.exists():
                    errors.append(f"{rel}: broken link -> {target}")
                    continue
            if fragment and dest.suffix == ".md":
                if fragment.lower() not in _heading_anchors(dest):
                    errors.append(f"{rel}: missing anchor -> {target}")
    return errors


def check_code_paths(root: Path = REPO_ROOT) -> list[str]:
    """Return code paths referenced in docs that do not exist on disk."""
    errors = []
    for rel in DOC_FILES:
        doc = root / rel
        if not doc.exists():
            continue
        for path in set(_CODE_PATH_RE.findall(doc.read_text(encoding="utf-8"))):
            candidate = root / ("src/" + path if path.startswith("repro/") else path)
            if not candidate.exists():
                errors.append(f"{rel}: references missing file {path}")
    return errors


def architecture_modules(root: Path = REPO_ROOT) -> list[str]:
    """Dotted repro.* module names mentioned in docs/architecture.md."""
    text = (root / "docs/architecture.md").read_text(encoding="utf-8")
    return sorted(set(_MODULE_RE.findall(text)))


def _resolve(name: str) -> None:
    """Resolve a dotted name: longest importable module prefix, then
    attribute lookup for the rest (so `repro.obs.span` and
    `repro.analysis.speedup.gemm_simulated_time` both count)."""
    parts = name.split(".")
    module, attrs = None, []
    for i in range(len(parts), 0, -1):
        try:
            module = importlib.import_module(".".join(parts[:i]))
        except ModuleNotFoundError:
            continue
        attrs = parts[i:]
        break
    if module is None:
        raise ImportError(f"no importable prefix of {name}")
    obj = module
    for attr in attrs:
        obj = getattr(obj, attr)


def check_architecture_imports(root: Path = REPO_ROOT) -> list[str]:
    """Resolve every repro.* dotted name in architecture.md."""
    errors = []
    modules = architecture_modules(root)
    if not modules:
        return ["docs/architecture.md names no repro.* modules"]
    for name in modules:
        try:
            _resolve(name)
        except Exception as exc:  # pragma: no cover - only on drift
            errors.append(f"docs/architecture.md: `{name}` fails to resolve: {exc}")
    return errors


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    errors = check_links() + check_code_paths() + check_architecture_imports()
    for err in errors:
        print(f"ERROR: {err}")
    if not errors:
        n = len(architecture_modules())
        print(f"docs OK: {len(DOC_FILES)} files, {n} architecture modules import")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
